package exp

import (
	"fmt"
	"math"
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/learn"
	"qhorn/internal/nested"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/stats"
	"qhorn/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E0",
		Name:  "summary",
		Paper: "all",
		Claim: "one-shot reproduction gate: every headline claim checked with a hard pass/fail verdict",
		Run:   runSummary,
	})
}

// runSummary executes a hard assertion per headline claim and reports
// PASS/FAIL, so a single command settles whether the reproduction
// holds on this machine.
func runSummary(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("summary")
	t := stats.NewTable(header(e), "claim", "check", "verdict")
	pass := func(claim, check string, ok bool) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		t.AddRow(claim, check, verdict)
	}

	// Theorem 3.1: exact qhorn-1 learning within the n lg n budget.
	{
		rng := rand.New(rand.NewSource(cfg.Seed))
		ok := true
		for i := 0; i < cfg.Trials; i++ {
			n := 4 + rng.Intn(28)
			target := query.GenQhorn1Sized(rng, n, 4)
			c := oracle.Count(oracle.Target(target))
			learned, _ := learn.Qhorn1(target.U, c)
			bound := int(6*float64(n)*math.Log2(float64(n))) + 6*n
			if !learned.Equivalent(target) || c.Questions > bound {
				ok = false
				break
			}
		}
		pass("Theorem 3.1", fmt.Sprintf("%d random qhorn-1 round trips within 6·n·lg n + 6n questions", cfg.Trials), ok)
	}

	// Theorems 3.5/3.8: exact role-preserving learning.
	{
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		ok := true
		for i := 0; i < cfg.Trials; i++ {
			n := 4 + rng.Intn(9)
			target := query.GenRolePreserving(rng, n, query.RPOptions{
				Heads: rng.Intn(n / 2), BodiesPerHead: 1 + rng.Intn(2),
				MaxBodySize: 1 + rng.Intn(3), Conjs: rng.Intn(3), MaxConjSize: 1 + rng.Intn(n),
			})
			learned, _ := learn.RolePreserving(target.U, oracle.Target(target))
			if !learned.Equivalent(target) {
				ok = false
				break
			}
		}
		pass("Theorems 3.5/3.8", fmt.Sprintf("%d random role-preserving round trips, exact", cfg.Trials), ok)
	}

	// §3.2.2 worked example: the learner ends with the paper's tuples.
	{
		u := boolean.MustUniverse(6)
		target := query.MustParse(u,
			"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
		learned, _ := learn.RolePreserving(u, oracle.Target(target))
		want := map[string]bool{"100110": true, "111001": true, "011110": true, "110011": true, "011011": true}
		conjs := learned.DominantConjunctions()
		ok := learned.Equivalent(target) && len(conjs) == len(want)
		for _, c := range conjs {
			if !want[u.Format(c)] {
				ok = false
			}
		}
		pass("§3.2.2 worked example", "distinguishing tuples match the paper's run", ok)
	}

	// Theorem 2.1: exactly 2^n − 1 questions forced.
	{
		u := boolean.MustUniverse(8)
		class := oracle.AliasClass(u)
		res, err := brute.Learn(class, oracle.NewAdversary(class), oracle.AliasQuestions(u))
		pass("Theorem 2.1", "alias adversary forces exactly 2^8 − 1 = 255 questions",
			err == nil && res.Questions == 255)
	}

	// Theorem 3.6: exactly class size − 1 questions forced.
	{
		u := boolean.MustUniverse(13)
		class := oracle.BodyClass(u, 3)
		adv := oracle.NewAdversary(class)
		pool := bodyLowerBoundQuestions(u, 3)
		res, err := brute.Learn(class, adv, pool)
		pass("Theorem 3.6", fmt.Sprintf("body adversary forces exactly %d questions", len(class)-1),
			err == nil && res.Questions == len(class)-1)
	}

	// Theorem 4.2: exhaustive completeness on two variables.
	{
		u := boolean.MustUniverse(2)
		queries := query.AllQueries(u)
		ok := true
		for _, given := range queries {
			vs, err := verify.Build(given)
			if err != nil {
				ok = false
				break
			}
			for _, intended := range queries {
				if vs.Run(oracle.Target(intended)).Correct != given.Equivalent(intended) {
					ok = false
				}
			}
		}
		pass("Theorem 4.2", fmt.Sprintf("all %d × %d two-variable pairs detected correctly", len(queries), len(queries)), ok)
	}

	// §4.2: the pinned verification set is self-consistent with 16
	// questions and the paper's A1.
	{
		u := boolean.MustUniverse(6)
		q := query.MustParse(u,
			"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
		vs, err := verify.Build(q)
		ok := err == nil && vs.SelfConsistent()
		if ok {
			wantA1 := boolean.MustParseSet(u, "{111001, 011110, 110011, 011011, 100110}")
			found := false
			for _, question := range vs.Questions {
				if question.Kind == verify.A1 && question.Set.Equal(wantA1) {
					found = true
				}
			}
			ok = found
		}
		pass("§4.2 worked example", "verification set self-consistent with the paper's A1", ok)
	}

	// Fig 1: the chocolate abstraction.
	{
		ps := nested.ChocolatePropositions()
		d := nested.Fig1Dataset()
		u := ps.Universe()
		s1 := ps.AbstractObject(d.Objects[0])
		s2 := ps.AbstractObject(d.Objects[1])
		ok := s1.Equal(boolean.MustParseSet(u, "{111, 100, 110}")) &&
			s2.Equal(boolean.MustParseSet(u, "{110, 010}"))
		intro := query.MustParse(u, "∀x1 ∃x2x3")
		matches, err := nested.Execute(intro, ps, d)
		ok = ok && err == nil && len(matches) == 1 && matches[0].Name == "Global Ground"
		pass("Fig 1 / §2", "chocolate abstraction and query (1) select Global Ground only", ok)
	}
	return []*stats.Table{t}
}
