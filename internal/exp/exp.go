// Package exp implements the experiment harness that regenerates
// every table and figure of the paper's evaluation (see DESIGN.md,
// "Per-experiment index"). Each experiment produces one or more
// stats.Tables comparing the paper's claim with the measured
// behaviour of the implementations in internal/learn, internal/verify
// and internal/brute.
package exp

import (
	"fmt"
	"sort"

	"qhorn/internal/obs"
	"qhorn/internal/run"
	"qhorn/internal/stats"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all random generation; runs are deterministic per
	// seed.
	Seed int64
	// Trials is the number of random targets per parameter point.
	Trials int
	// Quick shrinks the parameter sweeps for fast smoke runs.
	Quick bool
	// Parallel, when positive, pins the worker count of the parallel
	// question engine instead of the experiment's default sweep
	// (the -parallel flag of cmd/qhornexp).
	Parallel int
	// Engine carries the run-engine options the CLI composed
	// (run.FromFlags); normalize derives Parallel from it when unset,
	// so the harness honours -parallel through the same path as every
	// other CLI.
	Engine []run.Option
}

// DefaultConfig is used when fields are zero.
var DefaultConfig = Config{Seed: 1, Trials: 20}

// normalize fills zero fields from DefaultConfig.
func (c Config) normalize() Config {
	if c.Seed == 0 {
		c.Seed = DefaultConfig.Seed
	}
	if c.Trials <= 0 {
		c.Trials = DefaultConfig.Trials
	}
	if c.Parallel == 0 {
		c.Parallel = run.New(c.Engine...).Workers
	}
	return c
}

// registry returns the metrics registry the CLI's engine options carry
// (run.FromFlags threads the session registry through
// run.WithInstrumentation), or nil when the harness runs bare — the
// experiments' hand-built oracle stacks record their engine metrics
// (ask latency, memo hits, batch sizes) into it so a live -obs-addr
// server shows them mid-run.
func (c Config) registry() *obs.Registry {
	return run.New(c.Engine...).Ins.Metrics
}

// Experiment is one reproducible row of the evaluation.
type Experiment struct {
	// ID is the DESIGN.md experiment id, e.g. "E1".
	ID string
	// Name is the CLI name, e.g. "qhorn1-scaling".
	Name string
	// Paper cites the theorem/figure being reproduced.
	Paper string
	// Claim states the paper's claim in one line.
	Claim string
	// Run executes the experiment and returns its tables.
	Run func(Config) []*stats.Table
}

// registry holds all experiments in DESIGN.md order.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in DESIGN.md order (by numeric ID).
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool {
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

// idNum parses the numeric part of an "E<n>" id; malformed ids sort
// last.
func idNum(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "E%d", &n); err != nil {
		return 1 << 30
	}
	return n
}

// ByName returns the experiment with the given CLI name or ID.
func ByName(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name || e.ID == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns the CLI names of all experiments, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}

// header returns a table title combining id, citation and claim.
func header(e Experiment) string {
	return fmt.Sprintf("%s %s — %s (claim: %s)", e.ID, e.Name, e.Paper, e.Claim)
}
