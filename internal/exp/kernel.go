package exp

import (
	"math/rand"
	"runtime"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E23",
		Name:  "kernel",
		Paper: "engineering (docs/PERFORMANCE.md)",
		Claim: "the compiled evaluation kernel and the bitset answer matrix cut evaluation and brute-force learning wall time without changing a single question",
		Run:   runKernel,
	})
}

// runKernel measures the two perf layers this repo ships on top of the
// paper's algorithms: the compiled query-evaluation kernel against the
// tree-walking interpreter, and the bitset answer-matrix brute learner
// against the serial greedy scan. Both comparisons assert bit-identical
// behaviour inside the run — every evaluation verdict and every asked
// question must match — so the speedup columns never trade correctness
// for wall time. `qhornexp -exp kernel -json` writes the result as
// BENCH_kernel.json.
func runKernel(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("kernel")
	return []*stats.Table{evalTable(e, cfg), bruteTable(e, cfg)}
}

// evalTable times interpreted vs compiled evaluation on the workload
// the kernel exists for: the membership questions a qhorn1 learning
// session asks its simulated user, recorded once and replayed through
// both evaluators, with wall time and allocations per call.
func evalTable(e Experiment, cfg Config) *stats.Table {
	t := stats.NewTable(header(e)+" — evaluation (recorded session questions)",
		"n", "questions", "evals", "interp ms", "compiled ms", "speedup",
		"interp allocs/op", "compiled allocs/op")
	reg := cfg.registry()

	sweep := []int{12, 16, 24}
	reps := 50
	if cfg.Quick {
		sweep = []int{12}
		reps = 10
	}
	for _, n := range sweep {
		rng := rand.New(rand.NewSource(cfg.Seed))
		u := boolean.MustUniverse(n)
		var nq, interpMS, compiledMS, interpAllocs, compiledAllocs []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			target := query.GenQhorn1(rng, n)
			tr := oracle.Record(oracle.CountInto(oracle.TargetInterpreted(target), reg))
			learn.Run(u, tr, run.WithAlgorithm(run.Qhorn1))
			qs := make([]boolean.Set, len(tr.Entries))
			for i, entry := range tr.Entries {
				qs[i] = entry.Question
			}
			comp := query.Compile(target)
			// In-run identity assert: the kernel must agree with the
			// interpreter on every question before either is timed.
			for _, s := range qs {
				if comp.Eval(s) != target.Eval(s) {
					panic("exp: compiled kernel diverged from interpreter")
				}
			}
			ops := len(qs) * reps
			ms, allocs := timeAllocs(ops, func() {
				for r := 0; r < reps; r++ {
					for _, s := range qs {
						target.Eval(s)
					}
				}
			})
			interpMS = append(interpMS, ms)
			interpAllocs = append(interpAllocs, allocs)
			ms, allocs = timeAllocs(ops, func() {
				for r := 0; r < reps; r++ {
					for _, s := range qs {
						comp.Eval(s)
					}
				}
			})
			compiledMS = append(compiledMS, ms)
			compiledAllocs = append(compiledAllocs, allocs)
			nq = append(nq, float64(len(qs)))
		}
		im := stats.Summarize(interpMS).Mean
		cm := stats.Summarize(compiledMS).Mean
		t.AddRow(n, stats.Summarize(nq).Mean, int(stats.Summarize(nq).Mean)*reps, im, cm, im/cm,
			stats.Summarize(interpAllocs).Mean, stats.Summarize(compiledAllocs).Mean)
	}
	t.AddNote("workload: every membership question of a recorded qhorn1 session, replayed %d×; identity asserted on every question before timing; compiled allocs/op must be 0 (gated by TestCompiledEvalZeroAllocs)", reps)
	return t
}

// bruteTable times the serial greedy brute learner against the answer
// matrix on the full candidate space of small universes, asserting the
// question-count contract on every trial.
func bruteTable(e Experiment, cfg Config) *stats.Table {
	t := stats.NewTable(header(e)+" — brute learner",
		"n", "candidates", "pool", "questions",
		"serial ms", "matrix ms", "speedup", "build ms")
	reg := cfg.registry()

	sweep := []int{2, 3}
	if cfg.Quick {
		sweep = []int{2}
	}
	trials := cfg.Trials
	if trials > 8 {
		trials = 8 // the serial baseline is the slow side; cap the repeats
	}
	for _, n := range sweep {
		u := boolean.MustUniverse(n)
		candidates := query.AllQueries(u)
		pool := boolean.AllObjects(u)
		rng := rand.New(rand.NewSource(cfg.Seed))

		// The matrix is target-independent: built once per candidate
		// set and reused across every learn, the designed usage for
		// experiment sweeps. Its one-time cost is the build ms column.
		start := time.Now()
		m := brute.NewMatrixInto(candidates, pool, cfg.Parallel, reg)
		buildMS := float64(time.Since(start).Microseconds()) / 1000

		var questions, serialMS, matrixMS []float64
		for trial := 0; trial < trials; trial++ {
			target := candidates[rng.Intn(len(candidates))]

			sc := oracle.CountInto(oracle.Target(target), reg)
			start := time.Now()
			sres, serr := brute.LearnGreedySerial(candidates, sc, pool)
			serialMS = append(serialMS, float64(time.Since(start).Microseconds())/1000)

			mc := oracle.CountInto(oracle.Target(target), reg)
			start = time.Now()
			mres, merr := m.LearnGreedy(mc)
			matrixMS = append(matrixMS, float64(time.Since(start).Microseconds())/1000)

			// In-run identity asserts: same outcome, same questions.
			if (serr == nil) != (merr == nil) {
				panic("exp: matrix brute learner changed the error outcome")
			}
			if sc.Questions != mc.Questions || sres.Questions != mres.Questions {
				panic("exp: matrix brute learner broke the question-count contract")
			}
			if serr == nil && !sres.Learned.Equivalent(mres.Learned) {
				panic("exp: matrix brute learner diverged from serial output")
			}
			questions = append(questions, float64(sres.Questions))
		}
		qm := stats.Summarize(questions).Mean
		sm := stats.Summarize(serialMS).Mean
		mm := stats.Summarize(matrixMS).Mean
		t.AddRow(n, len(candidates), len(pool), qm, sm, mm, sm/mm, buildMS)
	}
	t.AddNote("matrix built once per candidate set (build ms) and reused across learns; question counts and learned queries asserted identical serial vs matrix on every trial")
	return t
}

// timeAllocs runs f, returning its wall time in milliseconds and the
// heap allocations per operation over ops operations.
func timeAllocs(ops int, f func()) (ms, allocsPerOp float64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Microseconds()) / 1000,
		float64(after.Mallocs-before.Mallocs) / float64(ops)
}
