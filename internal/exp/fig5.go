package exp

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Name:  "fig5",
		Paper: "Fig 5, §3.2.1–§3.2.2",
		Claim: "the lattice search walks exactly the paper's trace: bodies x1x4 and x3x4 for x5, body x1x2 for x6, and the five distinguishing tuples",
		Run:   runFig5,
	})
}

// runFig5 regenerates the paper's Fig 5 walkthrough as a question
// trace: the role-preserving learner runs on the §3.2 example query
// with tracing enabled, and the table lists every membership question
// with its phase and purpose.
func runFig5(cfg Config) []*stats.Table {
	e, _ := ByName("fig5")
	u := boolean.MustUniverse(6)
	target := query.MustParse(u,
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")

	t := stats.NewTable(header(e), "#", "phase", "purpose", "question", "response")
	i := 0
	learned, st := learn.RolePreservingTraced(u, oracle.Target(target), func(s learn.Step) {
		i++
		resp := "non-answer"
		if s.Answer {
			resp = "answer"
		}
		t.AddRow(i, s.Phase, s.Purpose, s.Question.Format(u), resp)
	})
	t.AddNote("target: %s", target)
	t.AddNote("learned: %s (equivalent: %v)", learned, learned.Equivalent(target))
	t.AddNote("questions: %d head, %d universal, %d existential",
		st.HeadQuestions, st.UniversalQuestions, st.ExistentialQuestions)

	// The Fig 5 artifacts: the distinguishing tuples of the bodies and
	// conjunctions the trace discovered.
	arts := stats.NewTable(header(e)+" — discovered distinguishing tuples",
		"kind", "expression", "tuple")
	nf := learned.Normalize()
	for _, ue := range nf.DominantUniversals() {
		arts.AddRow("universal", ue.String(), u.Format(nf.UniversalDistinguishingTuple(ue)))
	}
	for _, c := range nf.DominantConjunctions() {
		arts.AddRow("existential", fmt.Sprintf("∃%s", varsLabel(c)), u.Format(c))
	}
	arts.AddNote("paper (Fig 5 / §3.2.2): universal 100101, 001101, 110010; existential 100110, 111001, 011110, 110011, 011011")
	return []*stats.Table{t, arts}
}

func varsLabel(t boolean.Tuple) string {
	s := ""
	for _, v := range t.Vars() {
		s += fmt.Sprintf("x%d", v+1)
	}
	return s
}
