package exp

import (
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/nested"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Name:  "data-domain",
		Paper: "Fig 1, §2, §5",
		Claim: "Boolean membership questions round-trip through the data domain; learned queries execute correctly over real objects",
		Run:   runDataDomain,
	})
}

// runDataDomain reproduces the chocolate-shop pipeline end to end:
// abstract the Fig 1 boxes, learn the introduction's query from a
// simulated user who classifies concrete boxes, and execute it over a
// random store of boxes.
func runDataDomain(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("data-domain")
	ps := nested.ChocolatePropositions()
	u := ps.Universe()

	// Table 1: the Fig 1 Boolean abstraction.
	fig1 := stats.NewTable(header(e)+" — Fig 1 abstraction", "box", "chocolate", "isDark", "hasFilling", "fromMadagascar")
	d := nested.Fig1Dataset()
	for _, o := range d.Objects {
		for i, tup := range o.Tuples {
			bt := ps.Abstract(tup)
			fig1.AddRow(o.Name, i+1, bt.Has(0), bt.Has(1), bt.Has(2))
		}
	}

	// Table 2: learning through the data domain.
	intended := query.MustParse(u, "∀x1 ∃x2x3")
	questions := 0
	run := stats.NewTable(header(e)+" — end-to-end learning",
		"intended query", "learned query", "equivalent", "questions", "boxes matched / 200")
	simulated := oracle.Func(func(s boolean.Set) bool {
		questions++
		obj, err := ps.ConcretizeQuestion("probe", s)
		if err != nil {
			panic(err)
		}
		return intended.Eval(ps.AbstractObject(obj))
	})
	learned, _ := learn.Qhorn1(u, simulated)
	rng := rand.New(rand.NewSource(cfg.Seed))
	store := nested.RandomChocolates(rng, 200, 6)
	matches, err := nested.Execute(learned, ps, store)
	if err != nil {
		panic(err)
	}
	run.AddRow(intended.String(), learned.String(), learned.Equivalent(intended), questions, len(matches))
	return []*stats.Table{fig1, run}
}
