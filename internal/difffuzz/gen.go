package difffuzz

import (
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// GenCase draws one seeded learning case of the requested class on a
// universe of minVars..maxVars variables. Qhorn-1 hidden queries come
// from query.GenQhorn1 with an occasional small-partition variant so
// bodyless expressions and singleton existentials (the "empty body"
// and "head-only" tricky shapes) stay frequent; role-preserving
// hidden queries draw their shape parameters — head count, causal
// density θ, body and conjunction sizes — fresh per case.
func GenCase(rng *rand.Rand, class Class, minVars, maxVars int) Case {
	n := minVars
	if maxVars > minVars {
		n += rng.Intn(maxVars - minVars + 1)
	}
	switch class {
	case ClassQhorn1:
		var hidden query.Query
		if rng.Intn(4) == 0 {
			// Small partitions maximize bodyless universals and
			// singleton existential Horn expressions.
			hidden = query.GenQhorn1Sized(rng, n, 2)
		} else {
			hidden = query.GenQhorn1(rng, n)
		}
		return Case{Class: ClassQhorn1, Hidden: hidden}
	case ClassVerify:
		// A verification case needs a given query too: a mutant of the
		// hidden one when a mutation applies, otherwise the hidden
		// query itself (the verifier must then answer Correct).
		c := GenCase(rng, ClassRP, n, n)
		given := c.Hidden
		if g, _, ok := Mutant(rng, c.Hidden); ok {
			given = g
		}
		return Case{Class: ClassVerify, Hidden: c.Hidden, Given: given}
	default:
		opts := query.RPOptions{
			Heads:         rng.Intn(n/2 + 1),
			BodiesPerHead: 1 + rng.Intn(3),
			MinBodySize:   1,
			MaxBodySize:   1 + rng.Intn(3),
			Conjs:         rng.Intn(4),
			MaxConjSize:   1 + rng.Intn(n),
		}
		if opts.Heads == 0 && opts.Conjs == 0 {
			opts.Conjs = 1 // avoid the trivial query ⊤ dominating runs
		}
		return Case{Class: ClassRP, Hidden: query.GenRolePreserving(rng, n, opts)}
	}
}

// mutator is one adversarial edit. It returns ok=false when the edit
// does not apply to the query (for example flip-role on a query with
// no universal Horn expressions).
type mutator struct {
	name  string
	apply func(rng *rand.Rand, q query.Query) (query.Query, bool)
}

// mutators are the adversarial edits of the issue: flip head/body
// roles, duplicate variables into bodies, drop guarantee-clause
// witnesses, permute variables, plus structural drop/add edits. Each
// produces a syntactically valid query; Mutant additionally filters
// for role preservation.
var mutators = []mutator{
	{"flip-role", flipRole},
	{"dup-var", dupVar},
	{"drop-witness", dropWitness},
	{"permute", permuteVars},
	{"drop-expr", dropExpr},
	{"add-conj", addConj},
}

// Mutant applies a random adversarial mutation to q and returns the
// mutated query with the mutation's name. It retries across mutators
// until the result is valid role-preserving and structurally distinct
// from q; ok is false when no mutation applies (for example on ⊤).
func Mutant(rng *rand.Rand, q query.Query) (query.Query, string, bool) {
	for attempt := 0; attempt < 16; attempt++ {
		m := mutators[rng.Intn(len(mutators))]
		out, ok := m.apply(rng, q)
		if !ok || out.Validate() != nil || !out.IsRolePreserving() {
			continue
		}
		if out.Equal(q) {
			continue
		}
		return out, m.name, true
	}
	return query.Query{}, "", false
}

// flipRole swaps the head of a universal Horn expression with one of
// its body variables: ∀B∪{b} → h becomes ∀B∪{h} → b. On qhorn-1
// queries this preserves the partition but changes which dependence
// holds; on role-preserving queries it may demote a head.
func flipRole(rng *rand.Rand, q query.Query) (query.Query, bool) {
	var idxs []int
	for i, e := range q.Exprs {
		if e.Quant == query.Forall && e.Head != query.NoHead && !e.Body.IsEmpty() {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return query.Query{}, false
	}
	i := idxs[rng.Intn(len(idxs))]
	e := q.Exprs[i]
	vars := e.Body.Vars()
	b := vars[rng.Intn(len(vars))]
	exprs := copyExprs(q.Exprs)
	exprs[i] = query.Expr{Quant: query.Forall, Body: e.Body.Without(b).With(e.Head), Head: b}
	return rebuild(q, exprs)
}

// dupVar duplicates a variable into the body of an expression it does
// not already appear in — the classic way to leave qhorn-1 (variable
// repetition across parts) while staying syntactically well-formed.
func dupVar(rng *rand.Rand, q query.Query) (query.Query, bool) {
	if len(q.Exprs) == 0 || q.N() == 0 {
		return query.Query{}, false
	}
	for attempt := 0; attempt < 8; attempt++ {
		i := rng.Intn(len(q.Exprs))
		v := rng.Intn(q.N())
		e := q.Exprs[i]
		if e.Body.Has(v) || e.Head == v {
			continue
		}
		exprs := copyExprs(q.Exprs)
		exprs[i] = query.Expr{Quant: e.Quant, Body: e.Body.With(v), Head: e.Head}
		return rebuild(q, exprs)
	}
	return query.Query{}, false
}

// dropWitness replaces a universal Horn expression ∀B → h by the bare
// guarantee clause ∃B∪{h}: the implication is dropped but its witness
// conjunction survives. The mutant accepts strictly more objects than
// the original unless the implication was vacuous.
func dropWitness(rng *rand.Rand, q query.Query) (query.Query, bool) {
	var idxs []int
	for i, e := range q.Exprs {
		if e.Quant == query.Forall && e.Head != query.NoHead {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return query.Query{}, false
	}
	i := idxs[rng.Intn(len(idxs))]
	e := q.Exprs[i]
	exprs := copyExprs(q.Exprs)
	exprs[i] = query.Conjunction(e.Body.With(e.Head))
	return rebuild(q, exprs)
}

// permuteVars renames the variables by a random non-identity
// permutation (query.Rename): the shape is identical but the oracle
// for the original query classifies the mutant's questions wrongly.
func permuteVars(rng *rand.Rand, q query.Query) (query.Query, bool) {
	n := q.N()
	if n < 2 {
		return query.Query{}, false
	}
	perm := rng.Perm(n)
	identity := true
	for i, p := range perm {
		if p != i {
			identity = false
			break
		}
	}
	if identity {
		perm[0], perm[1] = perm[1], perm[0]
	}
	out, err := query.Rename(q, perm)
	if err != nil {
		return query.Query{}, false
	}
	return out, true
}

// dropExpr removes one expression. Dropping the last expression
// yields ⊤, which is a legitimate adversarial given query.
func dropExpr(rng *rand.Rand, q query.Query) (query.Query, bool) {
	if len(q.Exprs) == 0 {
		return query.Query{}, false
	}
	i := rng.Intn(len(q.Exprs))
	exprs := append(copyExprs(q.Exprs[:i]), q.Exprs[i+1:]...)
	return rebuild(q, exprs)
}

// addConj appends an existential conjunction over non-head variables,
// keeping role preservation by construction.
func addConj(rng *rand.Rand, q query.Query) (query.Query, bool) {
	nonHeads := q.U.Complement(q.UniversalHeads()).Vars()
	if len(nonHeads) == 0 {
		return query.Query{}, false
	}
	size := 1 + rng.Intn(minInt(3, len(nonHeads)))
	rng.Shuffle(len(nonHeads), func(i, j int) { nonHeads[i], nonHeads[j] = nonHeads[j], nonHeads[i] })
	conj := boolean.FromVars(nonHeads[:size]...)
	exprs := append(copyExprs(q.Exprs), query.Conjunction(conj))
	return rebuild(q, exprs)
}

func copyExprs(exprs []query.Expr) []query.Expr {
	return append([]query.Expr{}, exprs...)
}

func rebuild(q query.Query, exprs []query.Expr) (query.Query, bool) {
	out, err := query.New(q.U, exprs...)
	if err != nil {
		return query.Query{}, false
	}
	return out, true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
