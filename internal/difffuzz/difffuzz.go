// Package difffuzz is the differential-testing engine that
// cross-validates the repository's three independent implementations
// of qhorn semantics against each other:
//
//   - the fast exact learners (learn.Qhorn1, learn.RolePreserving),
//     whose output must be semantically equivalent to the hidden
//     query (Theorems 3.1, 3.5, 3.8);
//   - the verification-set construction (verify.Build, Fig 6), which
//     by Theorem 4.2 must accept exactly the queries equivalent to
//     the intended one;
//   - ground-truth semantics: the normal-form equivalence judgment of
//     Proposition 4.1 (query.Equivalent), exhaustive evaluation over
//     all objects on small universes, and the brute-force elimination
//     learner (internal/brute) where the universe permits.
//
// A disagreement between any two judges is a bug in at least one of
// them. The engine generates seeded random queries plus adversarial
// mutants (gen.go), runs every judge on each case (check.go), shrinks
// any failure to a locally-minimal repro (minimize.go), and persists
// repros to a replayable corpus (corpus.go). Native go-fuzz targets
// live in fuzz_test.go; cmd/qhornfuzz drives the engine from the
// command line.
package difffuzz

import (
	"fmt"
	"math/rand"
	"strings"

	"qhorn/internal/obs"
	"qhorn/internal/query"
)

// Class selects the hidden-query class of a fuzz case.
type Class string

const (
	// ClassQhorn1 draws hidden queries from qhorn-1 (§2.1.3) and
	// learns them with learn.Qhorn1.
	ClassQhorn1 Class = "qhorn1"
	// ClassRP draws hidden queries from role-preserving qhorn
	// (§2.1.4) and learns them with learn.RolePreserving.
	ClassRP Class = "rp"
	// ClassVerify pits a given (possibly wrong) query against a
	// hidden intended query through the verifier only: no learning.
	ClassVerify Class = "verify"
)

// Case is one differential test case. For the learning classes the
// hidden query is learned through a simulated oracle and the result
// is judged against it. For ClassVerify the Given query's
// verification set is run against an oracle backed by Hidden, and the
// verdict is judged against ground-truth equivalence.
type Case struct {
	Class  Class
	Hidden query.Query
	// Given is the user-specified query of a ClassVerify case; unused
	// otherwise.
	Given query.Query
}

// String renders the case compactly for logs and repro files.
func (c Case) String() string {
	if c.Class == ClassVerify {
		return fmt.Sprintf("[verify n=%d given=%s hidden=%s]", c.Hidden.N(), c.Given, c.Hidden)
	}
	return fmt.Sprintf("[%s n=%d hidden=%s]", c.Class, c.Hidden.N(), c.Hidden)
}

// Kind identifies which cross-validation judgment failed.
type Kind string

const (
	// KindClass: the learner's output left its query class.
	KindClass Kind = "class"
	// KindLearnEquiv: the learned query is not semantically
	// equivalent to the hidden one (exact learning violated).
	KindLearnEquiv Kind = "learn-equiv"
	// KindJudgment: the normal-form equivalence judgment
	// (Proposition 4.1) contradicts evaluation over objects — one of
	// the two semantic judges is wrong.
	KindJudgment Kind = "judgment"
	// KindVerifyBuild: the verification-set construction failed or
	// produced a set the query itself does not classify as expected.
	KindVerifyBuild Kind = "verify-build"
	// KindVerifyVerdict: the verification verdict disagrees with
	// ground-truth equivalence — a false alarm on an equivalent
	// intent, or a miss on a different one (Theorem 4.2 violated).
	KindVerifyVerdict Kind = "verify-verdict"
	// KindBrute: the brute-force reference learner disagrees with the
	// fast learner or the hidden query.
	KindBrute Kind = "brute"
	// KindBudget: the learner exceeded twice its advertised question
	// bound (learn.EstimateQhorn1 / learn.EstimateRolePreserving).
	KindBudget Kind = "budget"
	// KindParallel: the parallel batched learner (or verifier run)
	// broke the engine's determinism contract — a different query, a
	// different question count, or a different verification verdict
	// than the serial path (docs/PARALLELISM.md).
	KindParallel Kind = "parallel"
	// KindEngine: a run-engine option combination (batch, worker pool,
	// budget, memo, counter, instrumentation) failed to reproduce the
	// plain serial run — different questions or different per-phase
	// stats (docs/ENGINE.md).
	KindEngine Kind = "engine"
	// KindKernel: the compiled evaluation kernel (query.Compile)
	// classified an object differently from the interpreted Query.Eval
	// — the two evaluators must be bit-identical on every object
	// (docs/PERFORMANCE.md). This judge is always on.
	KindKernel Kind = "kernel"
)

// Disagreement is one failed judgment: the case, what fired, and —
// when one exists — a witness object the two sides classify
// differently.
type Disagreement struct {
	Kind    Kind
	Case    Case
	Learned query.Query
	// Witness is an object on which two judges disagree; HasWitness
	// reports whether it is meaningful (the empty object is a valid
	// witness).
	Witness    Witness
	HasWitness bool
	Detail     string
}

// String renders the disagreement for logs.
func (d Disagreement) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: %s", d.Kind, d.Case, d.Detail)
	if d.HasWitness {
		fmt.Fprintf(&b, " (witness %s)", d.Witness.Format(d.Case.Hidden.U))
	}
	return b.String()
}

// Config parameterizes a fuzzing run.
type Config struct {
	// Seed seeds the deterministic case generator.
	Seed int64
	// Runs is the number of generated cases (default 100). Each run
	// produces one learning case and one derived verification case.
	Runs int
	// Class restricts the learning cases: ClassQhorn1, ClassRP, or
	// empty/"both" to alternate.
	Class Class
	// MinVars and MaxVars bound the universe size (defaults 2 and 8).
	MinVars, MaxVars int
	// Options tune the per-case checks (sampling width, brute-force
	// ceiling, bug injection).
	Options Options
	// Progress, when set, is called after every case with the number
	// of cases done so far.
	Progress func(done, total int)
	// Spans and Metrics are the optional observability hooks; nil is
	// silent.
	Spans   *obs.Tracer
	Metrics *obs.Registry
}

// Report aggregates one fuzzing run.
type Report struct {
	Runs         int
	CasesByClass map[Class]int
	// BruteCases counts cases the brute judge reached (exhaustive or
	// sampled); BruteSampledCases is the sampled subset.
	BruteCases        int
	BruteSampledCases int
	Questions         int
	Disagreements     []Disagreement
}

// OK reports whether every judgment of the run agreed.
func (r Report) OK() bool { return len(r.Disagreements) == 0 }

// Summary renders the report as aligned text.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cases: qhorn1 %d, rp %d, verify %d (brute cross-checks %d, %d sampled)\n",
		r.CasesByClass[ClassQhorn1], r.CasesByClass[ClassRP], r.CasesByClass[ClassVerify], r.BruteCases, r.BruteSampledCases)
	fmt.Fprintf(&b, "membership questions: %d\n", r.Questions)
	fmt.Fprintf(&b, "disagreements: %d", len(r.Disagreements))
	return b.String()
}

// Run generates cfg.Runs seeded cases, checks each with every judge,
// and reports all disagreements. It is deterministic for a fixed
// Config.
func Run(cfg Config) Report {
	if cfg.Runs <= 0 {
		cfg.Runs = 100
	}
	if cfg.MinVars < 1 {
		cfg.MinVars = 2
	}
	if cfg.MaxVars < cfg.MinVars {
		cfg.MaxVars = 8
	}
	if cfg.MaxVars < cfg.MinVars {
		cfg.MaxVars = cfg.MinVars
	}
	opt := cfg.Options.withDefaults()

	root := cfg.Spans.StartSpan("difffuzz",
		obs.Af("seed", "%d", cfg.Seed),
		obs.Af("runs", "%d", cfg.Runs),
		obs.A("class", string(cfg.effectiveClass())))
	defer root.End()

	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := Report{Runs: cfg.Runs, CasesByClass: map[Class]int{}}
	record := func(ds []Disagreement) {
		for _, d := range ds {
			rep.Disagreements = append(rep.Disagreements, d)
			root.Event("disagreement", obs.A("kind", string(d.Kind)), obs.A("detail", d.Detail))
			cfg.Metrics.Counter(obs.MetricFuzzDisagreements, "kind", string(d.Kind)).Inc()
		}
	}
	for i := 0; i < cfg.Runs; i++ {
		class := cfg.classFor(i)
		c := GenCase(rng, class, cfg.MinVars, cfg.MaxVars)
		rep.CasesByClass[class]++
		cfg.Metrics.Counter(obs.MetricFuzzCases, "class", string(class)).Inc()
		res := CheckCase(c, opt)
		rep.Questions += res.Questions
		if res.BruteChecked {
			rep.BruteCases++
			if res.BruteSampled {
				rep.BruteSampledCases++
			}
		}
		record(res.Disagreements)

		// Derived verification case: an adversarial mutant of the
		// hidden query plays the user's written query. The verifier
		// must accept it iff it is still equivalent.
		if given, _, ok := Mutant(rng, c.Hidden); ok {
			vc := Case{Class: ClassVerify, Hidden: c.Hidden, Given: given}
			rep.CasesByClass[ClassVerify]++
			cfg.Metrics.Counter(obs.MetricFuzzCases, "class", string(ClassVerify)).Inc()
			vres := CheckCase(vc, opt)
			rep.Questions += vres.Questions
			record(vres.Disagreements)
		}
		if cfg.Progress != nil {
			cfg.Progress(i+1, cfg.Runs)
		}
	}
	root.Annotate(obs.Af("disagreements", "%d", len(rep.Disagreements)))
	return rep
}

// effectiveClass renders the configured class restriction for logs.
func (cfg Config) effectiveClass() Class {
	if cfg.Class == ClassQhorn1 || cfg.Class == ClassRP {
		return cfg.Class
	}
	return "both"
}

// classFor picks the class of the i-th learning case.
func (cfg Config) classFor(i int) Class {
	switch cfg.Class {
	case ClassQhorn1, ClassRP:
		return cfg.Class
	default:
		if i%2 == 0 {
			return ClassQhorn1
		}
		return ClassRP
	}
}
