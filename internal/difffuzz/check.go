package difffuzz

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/verify"
)

// Witness is an object two judges classify differently. It is a plain
// database (boolean.Set); the alias names its role in a disagreement.
type Witness = boolean.Set

// Options tune the per-case judge battery.
type Options struct {
	// EvalSamples is the number of random probe objects per semantic
	// comparison on universes too large to enumerate (default 96).
	EvalSamples int
	// ExhaustiveVars is the largest universe on which equivalence is
	// decided by evaluating every object — 2^(2^n) objects, so the
	// default is 3 (256 objects).
	ExhaustiveVars int
	// BruteVars is the largest universe on which the brute-force
	// elimination learner cross-checks the fast learner exhaustively —
	// every role-preserving query and every object enumerated (default
	// 4, the widest range the antichain enumeration reaches; negative
	// disables the check). The answer matrix behind the check is built
	// once per universe and cached for the process.
	BruteVars int
	// BruteSampleVars extends the brute cross-check past the
	// exhaustive range: universes with BruteVars < n ≤ BruteSampleVars
	// get a seeded sample of candidate queries (always including the
	// hidden query's normal form) and probe objects. An ambiguous
	// outcome is tolerated — a sampled pool need not separate every
	// candidate pair — but an unambiguous wrong answer is a
	// disagreement. Default 5; negative disables.
	BruteSampleVars int
	// Matrix configures the answer-matrix builds behind both brute
	// judges (shard size, compression, spill directory, scalar build);
	// the zero value is the default sliced in-RAM build. Registry is
	// overridden: the judges are metric-silent.
	Matrix brute.MatrixOptions
	// Warp, when set, corrupts the learned query before it is judged.
	// Tests use it to inject known bugs and prove the engine detects
	// and the minimizer shrinks them.
	Warp func(query.Query) query.Query
	// Parallel, when positive, adds the parallel-engine judge: the
	// batched learners and verifier run through an oracle.Parallel
	// pool of this many workers and must reproduce the serial path
	// exactly — an equivalent query with an identical question count,
	// and an identical verification result (docs/PARALLELISM.md).
	Parallel int
	// EngineMatrix adds the run-engine options-matrix judge: every
	// meaningful option combination (batch, parallel×{2,8}, budget,
	// memo, counter, instrumentation) re-runs the case through
	// learn.Run / verify.RunWith and must reproduce the plain serial
	// run — identical per-phase stats, and an identical ordered
	// question stream for non-batching options or identical question
	// multiset for the batched ones, whose waves interleave
	// independent streams (docs/ENGINE.md).
	EngineMatrix bool
}

func (o Options) withDefaults() Options {
	if o.EvalSamples <= 0 {
		o.EvalSamples = 96
	}
	if o.ExhaustiveVars <= 0 {
		o.ExhaustiveVars = 3
	}
	if o.BruteVars == 0 {
		o.BruteVars = 4
	}
	if o.BruteSampleVars == 0 {
		o.BruteSampleVars = 5
	}
	return o
}

// CaseResult is the outcome of running every judge on one case.
type CaseResult struct {
	// Learned is the fast learner's output (learning classes only).
	Learned query.Query
	// Questions is the total membership questions asked across the
	// learner, the verifier, and the brute-force cross-check.
	Questions int
	// BruteChecked reports whether the universe was small enough for
	// the brute-force cross-check.
	BruteChecked bool
	// BruteSampled reports that the brute cross-check ran in its
	// sampled form (BruteVars < n ≤ BruteSampleVars) rather than the
	// exhaustive one.
	BruteSampled  bool
	Disagreements []Disagreement
}

// CheckCase runs the full judge battery on one case. It is
// deterministic: the learners are deterministic, and the randomized
// probe sampling is seeded from the case content, so a failing case
// keeps failing — the property the minimizer depends on.
func CheckCase(c Case, opt Options) CaseResult {
	opt = opt.withDefaults()
	if c.Class == ClassVerify {
		return checkVerify(c, opt)
	}
	return checkLearn(c, opt)
}

// checkLearn learns the hidden query through a counting oracle and
// judges the result: class membership, semantic equivalence by normal
// form and by evaluation (cross-checked against each other),
// verification-set soundness, the question budget, and — on tiny
// universes — the brute-force reference learner.
func checkLearn(c Case, opt Options) CaseResult {
	u := c.Hidden.U
	counter := oracle.Count(oracle.Target(c.Hidden))
	var learned query.Query
	var asked int
	switch c.Class {
	case ClassQhorn1:
		q, st := learn.Qhorn1(u, counter)
		learned, asked = q, st.Total()
	default:
		q, st := learn.RolePreserving(u, counter)
		learned, asked = q, st.Total()
	}
	serial := learned // pre-warp output, the parallel judge's reference
	if opt.Warp != nil {
		learned = opt.Warp(learned)
	}
	res := CaseResult{Learned: learned, Questions: asked}
	fail := func(kind Kind, w Witness, hasW bool, format string, args ...interface{}) {
		res.Disagreements = append(res.Disagreements, Disagreement{
			Kind: kind, Case: c, Learned: learned,
			Witness: w, HasWitness: hasW,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// Judge 0 (always on): the compiled evaluation kernel must agree
	// with the interpreted evaluator on both the hidden and the learned
	// query.
	judgeKernel(&res, c, opt, c.Hidden, learned)

	// Judge 1: the learner must stay inside its advertised class.
	if c.Class == ClassQhorn1 && !learned.IsQhorn1() {
		fail(KindClass, Witness{}, false, "learned %s is not qhorn-1", learned)
	}
	if !learned.IsRolePreserving() {
		fail(KindClass, Witness{}, false, "learned %s is not role-preserving", learned)
	}

	// Judge 2: the question budget (2× slack over the advertised
	// estimate; the warp does not change the count, so this judges the
	// untainted learner).
	if bound := 2 * estimateFor(c); asked > bound {
		fail(KindBudget, Witness{}, false, "%d questions exceed 2× estimate %d", asked, bound)
	}

	// Judges 3+4: semantic equivalence by Proposition 4.1 normal form
	// and by evaluation over objects, cross-checked.
	equiv := judgeEquivalence(&res, c, learned, c.Hidden, opt)
	if !equiv.equal {
		fail(KindLearnEquiv, equiv.witness, equiv.hasWitness,
			"learned %s is not equivalent to hidden %s", learned, c.Hidden)
	}

	// Judge 5: the verification set of the learned query, run against
	// the hidden oracle, must answer Correct iff the queries are
	// equivalent (Theorem 4.2) and must be self-consistent.
	if learned.IsRolePreserving() {
		vs, err := verify.Build(learned)
		if err != nil {
			fail(KindVerifyBuild, Witness{}, false, "verify.Build(%s): %v", learned, err)
		} else {
			if !vs.SelfConsistent() {
				fail(KindVerifyBuild, Witness{}, false, "verification set of %s is not self-consistent", learned)
			}
			vres := vs.Run(oracle.Target(c.Hidden))
			res.Questions += vres.QuestionsAsked
			if vres.Correct != equiv.equal {
				w, hasW := equiv.witness, equiv.hasWitness
				if !vres.Correct && len(vres.Disagreements) > 0 {
					w, hasW = vres.Disagreements[0].Question.Set, true
				}
				fail(KindVerifyVerdict, w, hasW,
					"verifier says correct=%v but equivalence is %v", vres.Correct, equiv.equal)
			}
		}
	}

	// Judge 6: the parallel batched learner must reproduce the serial
	// path exactly — an equivalent query learned with an identical
	// question count (the determinism contract of the batch engine,
	// docs/PARALLELISM.md).
	if opt.Parallel > 0 {
		pool := oracle.Parallel(oracle.Target(c.Hidden), opt.Parallel)
		var plearned query.Query
		var pasked int
		switch c.Class {
		case ClassQhorn1:
			q, st := learn.Qhorn1Parallel(u, pool)
			plearned, pasked = q, st.Total()
		default:
			q, st := learn.RolePreservingParallel(u, pool)
			plearned, pasked = q, st.Total()
		}
		res.Questions += pasked
		if pasked != asked {
			fail(KindParallel, Witness{}, false,
				"parallel learner asked %d questions, serial asked %d", pasked, asked)
		}
		if w, found := SemanticWitness(plearned, serial, opt); found {
			fail(KindParallel, w, true,
				"parallel learner's %s is not equivalent to serial %s", plearned, serial)
		}
	}

	// Judge 7: the brute-force elimination learner. Universes up to
	// BruteVars get the exhaustive check — every role-preserving query
	// eliminated over every object, through a process-cached answer
	// matrix so the (candidates × objects) build cost is paid once per
	// universe. Universes up to BruteSampleVars get the sampled
	// variant: a seeded candidate pool guaranteed to contain the hidden
	// query's normal form, probed on sampled objects.
	switch {
	case opt.BruteVars > 0 && u.N() <= opt.BruteVars:
		res.BruteChecked = true
		m, err := bruteMatrixFor(u, opt)
		if err != nil {
			fail(KindBrute, Witness{}, false, "brute matrix build: %v", err)
			break
		}
		bres, err := m.Learn(oracle.Target(c.Hidden))
		if err != nil {
			fail(KindBrute, Witness{}, false, "brute.Learn: %v", err)
		} else {
			res.Questions += bres.Questions
			if !bres.Learned.Equivalent(c.Hidden) {
				fail(KindBrute, Witness{}, false,
					"brute learned %s, not equivalent to hidden %s", bres.Learned, c.Hidden)
			}
			if equiv.equal && learned.IsRolePreserving() && !bres.Learned.Equivalent(learned) {
				fail(KindBrute, Witness{}, false,
					"brute learned %s, fast learner %s — equivalence is not transitive", bres.Learned, learned)
			}
		}
	case opt.BruteSampleVars > 0 && u.N() <= opt.BruteSampleVars:
		res.BruteChecked = true
		res.BruteSampled = true
		judgeBruteSampled(&res, c, opt, fail)
	}

	// Judge 8: the run-engine options matrix — every option combination
	// must reproduce the plain serial engine run bit for bit
	// (docs/ENGINE.md).
	if opt.EngineMatrix {
		judgeEngineMatrixLearn(c, &res)
	}
	return res
}

// checkVerify runs the Given query's verification set against an
// oracle backed by Hidden and judges the verdict against ground-truth
// equivalence. Cases outside the construction's domain (non-role-
// preserving queries) are skipped: Build's error there is documented
// behavior, not a disagreement.
func checkVerify(c Case, opt Options) CaseResult {
	res := CaseResult{}
	if !c.Given.IsRolePreserving() || !c.Hidden.IsRolePreserving() {
		return res
	}
	fail := func(kind Kind, w Witness, hasW bool, format string, args ...interface{}) {
		res.Disagreements = append(res.Disagreements, Disagreement{
			Kind: kind, Case: c, Witness: w, HasWitness: hasW,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	// Kernel judge (always on): compiled vs interpreted evaluation of
	// both queries of the case.
	judgeKernel(&res, c, opt, c.Given, c.Hidden)
	vs, err := verify.Build(c.Given)
	if err != nil {
		fail(KindVerifyBuild, Witness{}, false, "verify.Build(%s): %v", c.Given, err)
		return res
	}
	if !vs.SelfConsistent() {
		fail(KindVerifyBuild, Witness{}, false, "verification set of %s is not self-consistent", c.Given)
	}
	vres := vs.Run(oracle.Target(c.Hidden))
	res.Questions += vres.QuestionsAsked

	// Parallel-engine judge: running the same set as one batch must
	// reproduce the serial run bit for bit — verdict, question count,
	// and the disagreement list in set order.
	if opt.Parallel > 0 {
		pool := oracle.Parallel(oracle.Target(c.Hidden), opt.Parallel)
		pres := vs.RunParallel(pool)
		res.Questions += pres.QuestionsAsked
		switch {
		case pres.Correct != vres.Correct || pres.QuestionsAsked != vres.QuestionsAsked:
			fail(KindParallel, Witness{}, false,
				"parallel verify (correct=%v, %d questions) differs from serial (correct=%v, %d questions)",
				pres.Correct, pres.QuestionsAsked, vres.Correct, vres.QuestionsAsked)
		case len(pres.Disagreements) != len(vres.Disagreements):
			fail(KindParallel, Witness{}, false,
				"parallel verify found %d disagreements, serial found %d",
				len(pres.Disagreements), len(vres.Disagreements))
		default:
			for i := range pres.Disagreements {
				if pres.Disagreements[i].Question.Set.Key() != vres.Disagreements[i].Question.Set.Key() {
					fail(KindParallel, pres.Disagreements[i].Question.Set, true,
						"parallel verify disagreement %d differs from serial", i)
					break
				}
			}
		}
	}

	// Options-matrix judge: the same set through every engine option
	// combination must reproduce the serial result and question stream
	// (docs/ENGINE.md).
	if opt.EngineMatrix {
		judgeEngineMatrixVerify(c, vs, &res)
	}

	equiv := judgeEquivalence(&res, c, c.Given, c.Hidden, opt)
	if vres.Correct != equiv.equal {
		w, hasW := equiv.witness, equiv.hasWitness
		if !vres.Correct && len(vres.Disagreements) > 0 {
			w, hasW = vres.Disagreements[0].Question.Set, true
		}
		fail(KindVerifyVerdict, w, hasW,
			"verifier says correct=%v but equivalence is %v", vres.Correct, equiv.equal)
	}
	return res
}

// equivJudgment is the reconciled output of the two semantic judges.
type equivJudgment struct {
	equal      bool
	witness    Witness
	hasWitness bool
}

// judgeEquivalence decides whether a and b are semantically equal by
// two independent judges — the Proposition 4.1 normal form
// (query.Equivalent) and evaluation over objects — records a
// KindJudgment disagreement when they contradict each other inside
// the proposition's domain (role-preserving queries), and returns the
// reconciled verdict: evaluation wins where it is exhaustive, a found
// witness always wins, the normal form decides the rest.
func judgeEquivalence(res *CaseResult, c Case, a, b query.Query, opt Options) equivJudgment {
	structEq := a.Equivalent(b)
	w, found := SemanticWitness(a, b, opt)
	exhaustive := a.N() <= opt.ExhaustiveVars
	prop41 := a.IsRolePreserving() && b.IsRolePreserving()
	if prop41 {
		if structEq && found {
			res.Disagreements = append(res.Disagreements, Disagreement{
				Kind: KindJudgment, Case: c, Learned: a, Witness: w, HasWitness: true,
				Detail: fmt.Sprintf("normal forms of %s and %s are equal but an object separates them", a, b),
			})
		}
		if !structEq && !found && exhaustive {
			res.Disagreements = append(res.Disagreements, Disagreement{
				Kind: KindJudgment, Case: c, Learned: a,
				Detail: fmt.Sprintf("normal forms of %s and %s differ but no object separates them", a, b),
			})
		}
	}
	switch {
	case exhaustive:
		return equivJudgment{equal: !found, witness: w, hasWitness: found}
	case found:
		return equivJudgment{equal: false, witness: w, hasWitness: true}
	case prop41:
		return equivJudgment{equal: structEq}
	default:
		return equivJudgment{equal: true}
	}
}

// estimateFor returns the advertised question bound for the case's
// class, with the role-preserving shape parameters read off the
// hidden query's normal form (k counts learned conjunctions including
// the guarantee clauses of the universals, as in the estimate tests).
func estimateFor(c Case) int {
	n := c.Hidden.N()
	if c.Class == ClassQhorn1 {
		return learn.EstimateQhorn1(n)
	}
	nf := c.Hidden.Normalize()
	heads := nf.UniversalHeads().Count()
	theta := nf.CausalDensity()
	if theta < 1 {
		theta = 1
	}
	k := len(nf.DominantConjunctions()) + heads*theta
	if k < 1 {
		k = 1
	}
	return learn.EstimateRolePreserving(n, heads, theta, k)
}

// SemanticWitness searches for an object a and b classify
// differently. On universes of at most opt.ExhaustiveVars variables
// the search is exhaustive, so not finding a witness proves
// equivalence. On larger universes it probes the verification sets of
// both queries — by Theorem 4.2 two inequivalent role-preserving
// queries disagree on one of those questions — and then samples
// random objects around structural anchors, deterministically seeded
// from the pair's text so the search is a pure function of (a, b).
func SemanticWitness(a, b query.Query, opt Options) (Witness, bool) {
	opt = opt.withDefaults()
	u := a.U
	if u.N() <= opt.ExhaustiveVars {
		for _, o := range boolean.AllObjects(u) {
			if a.Eval(o) != b.Eval(o) {
				return ShrinkWitness(a, b, o), true
			}
		}
		return Witness{}, false
	}
	for _, q := range []query.Query{a, b} {
		vs, err := verify.Build(q)
		if err != nil {
			continue
		}
		for _, question := range vs.Questions {
			if a.Eval(question.Set) != b.Eval(question.Set) {
				return ShrinkWitness(a, b, question.Set), true
			}
		}
	}
	rng := rand.New(rand.NewSource(witnessSeed(a, b)))
	anchors := witnessAnchors(a, b)
	for i := 0; i < opt.EvalSamples; i++ {
		o := probeObject(rng, u, anchors)
		if a.Eval(o) != b.Eval(o) {
			return ShrinkWitness(a, b, o), true
		}
	}
	return Witness{}, false
}

// probeObject draws one random object: each tuple is either a
// perturbed structural anchor or uniform over the universe.
func probeObject(rng *rand.Rand, u boolean.Universe, anchors []boolean.Tuple) boolean.Set {
	var tuples []boolean.Tuple
	for j := 1 + rng.Intn(3); j > 0; j-- {
		var t boolean.Tuple
		if len(anchors) > 0 && rng.Intn(2) == 0 {
			t = anchors[rng.Intn(len(anchors))]
			for f := rng.Intn(3); f > 0; f-- {
				v := rng.Intn(u.N())
				if t.Has(v) {
					t = t.Without(v)
				} else {
					t = t.With(v)
				}
			}
		} else {
			t = boolean.Tuple(rng.Int63()).Intersect(u.All())
		}
		tuples = append(tuples, t)
	}
	return boolean.NewSet(tuples...)
}

// KernelWitness searches for an object the compiled kernel
// (query.Compile) and the interpreted Query.Eval classify differently
// — by construction there should be none; any hit is a kernel bug. The
// search mirrors SemanticWitness: exhaustive on small universes, then
// the query's own verification questions (evaluation differences
// concentrate on distinguishing tuples), then seeded anchor-perturbed
// samples, plus the empty object. It is a pure function of q.
func KernelWitness(q query.Query, opt Options) (Witness, bool) {
	opt = opt.withDefaults()
	c := query.Compile(q)
	u := q.U
	if c.Eval(boolean.Set{}) != q.Eval(boolean.Set{}) {
		return Witness{}, true
	}
	if u.N() <= opt.ExhaustiveVars {
		for _, o := range boolean.AllObjects(u) {
			if c.Eval(o) != q.Eval(o) {
				return o, true
			}
		}
		return Witness{}, false
	}
	if vs, err := verify.Build(q); err == nil {
		for _, question := range vs.Questions {
			if c.Eval(question.Set) != q.Eval(question.Set) {
				return question.Set, true
			}
		}
	}
	rng := rand.New(rand.NewSource(witnessSeed(q, q)))
	anchors := witnessAnchors(q, q)
	for i := 0; i < opt.EvalSamples; i++ {
		o := probeObject(rng, u, anchors)
		if c.Eval(o) != q.Eval(o) {
			return o, true
		}
	}
	return Witness{}, false
}

// judgeKernel runs the compiled-vs-interpreted evaluation judge over
// every query the case touches. It is part of the default judge set:
// every generated case exercises it.
func judgeKernel(res *CaseResult, c Case, opt Options, queries ...query.Query) {
	for _, q := range queries {
		if w, found := KernelWitness(q, opt); found {
			res.Disagreements = append(res.Disagreements, Disagreement{
				Kind: KindKernel, Case: c, Learned: q, Witness: w, HasWitness: true,
				Detail: fmt.Sprintf("compiled and interpreted Eval of %s disagree", q),
			})
		}
	}
}

// ShrinkWitness drops tuples from a separating object while it still
// separates the two queries, so reported witnesses are minimal.
func ShrinkWitness(a, b query.Query, w boolean.Set) boolean.Set {
	for changed := true; changed; {
		changed = false
		for _, t := range w.Tuples() {
			cand := w.Without(t)
			if a.Eval(cand) != b.Eval(cand) {
				w, changed = cand, true
				break
			}
		}
	}
	return w
}

// witnessAnchors collects the structurally interesting tuples of both
// queries: the all-true tuple, closures of dominant conjunctions, and
// universal distinguishing tuples. Random probes are perturbations of
// these, which is where evaluation differences concentrate.
func witnessAnchors(a, b query.Query) []boolean.Tuple {
	var out []boolean.Tuple
	for _, q := range []query.Query{a, b} {
		out = append(out, q.U.All())
		for _, c := range q.DominantConjunctions() {
			out = append(out, q.Closure(c))
		}
		for _, e := range q.DominantUniversals() {
			out = append(out, q.UniversalDistinguishingTuple(e))
		}
	}
	return out
}

// witnessSeed derives the deterministic sampling seed from the pair's
// rendered text, making SemanticWitness a pure function.
func witnessSeed(a, b query.Query) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", a.N(), a, b)
	return int64(h.Sum64())
}
