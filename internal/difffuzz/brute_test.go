package difffuzz

import (
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/query"
)

// TestBruteJudgeExhaustiveRange: universes up to BruteVars (default 4,
// the new exhaustive ceiling) run the exhaustive brute judge, cleanly
// and without the sampled marker.
func TestBruteJudgeExhaustiveRange(t *testing.T) {
	for _, src := range []string{
		"∀x1 → x2",
		"∀x1 → x2 ∀x3 → x4 ∃x2x3",
		"∃x1x2 ∃x3x4",
	} {
		u := boolean.MustUniverse(4)
		c := Case{Class: ClassRP, Hidden: query.MustParse(u, src)}
		res := CheckCase(c, Options{})
		if !res.BruteChecked || res.BruteSampled {
			t.Errorf("%s: BruteChecked=%v BruteSampled=%v, want exhaustive check", src, res.BruteChecked, res.BruteSampled)
		}
		if len(res.Disagreements) != 0 {
			t.Errorf("%s: unexpected disagreements: %v", src, res.Disagreements)
		}
	}
}

// TestBruteJudgeSampledRange: n=5 sits past the exhaustive ceiling but
// inside BruteSampleVars, so the sampled judge runs: seeded candidate
// and object samples, hidden guaranteed in the pool, no disagreement on
// a correct learner.
func TestBruteJudgeSampledRange(t *testing.T) {
	for _, src := range []string{
		"∀x1 → x2 ∃x3x4x5",
		"∀x1x2 → x3 ∀x4 → x5",
		"∃x1 ∃x2x3 ∃x4x5",
	} {
		u := boolean.MustUniverse(5)
		c := Case{Class: ClassRP, Hidden: query.MustParse(u, src)}
		res := CheckCase(c, Options{})
		if !res.BruteChecked || !res.BruteSampled {
			t.Errorf("%s: BruteChecked=%v BruteSampled=%v, want sampled check", src, res.BruteChecked, res.BruteSampled)
		}
		if len(res.Disagreements) != 0 {
			t.Errorf("%s: unexpected disagreements: %v", src, res.Disagreements)
		}
	}
}

// TestBruteJudgeDisabled: negative settings switch both brute judges
// off even on tiny universes.
func TestBruteJudgeDisabled(t *testing.T) {
	u := boolean.MustUniverse(2)
	c := Case{Class: ClassRP, Hidden: query.MustParse(u, "∀x1 → x2")}
	res := CheckCase(c, Options{BruteVars: -1, BruteSampleVars: -1})
	if res.BruteChecked {
		t.Error("BruteChecked with both brute judges disabled")
	}
}

// TestBruteMatrixForCached: the exhaustive judge's matrix is built once
// per (universe, options) key and shared by later calls.
func TestBruteMatrixForCached(t *testing.T) {
	u := boolean.MustUniverse(3)
	m1, err := bruteMatrixFor(u, Options{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := bruteMatrixFor(u, Options{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("bruteMatrixFor rebuilt a cached matrix")
	}
	// A different matrix configuration gets its own entry.
	m3, err := bruteMatrixFor(u, Options{Matrix: brute.MatrixOptions{ShardSize: 64}}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("distinct matrix options share one cache entry")
	}
}

// TestBruteSampledDeterministic: the sampled judge is a pure function
// of the case — the property the minimizer depends on.
func TestBruteSampledDeterministic(t *testing.T) {
	u := boolean.MustUniverse(5)
	c := Case{Class: ClassRP, Hidden: query.MustParse(u, "∀x1 → x2 ∃x3x4")}
	a := CheckCase(c, Options{})
	b := CheckCase(c, Options{})
	if a.Questions != b.Questions || len(a.Disagreements) != len(b.Disagreements) {
		t.Errorf("sampled judge not deterministic: %+v vs %+v", a, b)
	}
	if !a.BruteSampled || !b.BruteSampled {
		t.Error("sampled judge did not run")
	}
}
