package difffuzz

import "testing"

// Native go-fuzz targets: fuzz inputs are queries in the paper's
// shorthand (decoded by CaseFromShorthand), so the checked-in seeds
// under testdata/fuzz are human-readable and the mutator explores the
// space of query shapes through the parser. Each target feeds the
// decoded case to the full differential judge battery; any
// disagreement is a bug in one of the cross-validated components.
//
// CI runs each target for a short -fuzztime on top of the seed
// corpus; locally:
//
//	go test -run '^$' -fuzz '^FuzzQhorn1RoundTrip$' -fuzztime 30s ./internal/difffuzz
var (
	qhorn1Seeds = []string{
		"∀x1 ∃x2",               // empty-body universal + head-only part
		"∃x1 ∃x2 ∃x3 ∃x4",       // all parts head-only
		"∀x1x2 → x3 ∃x4",        // Fig 1 shape
		"∃x1x2 → x3 ∀x4x5 → x6", // both quantifiers with bodies
		"∀x1x2x3x4x5x6x7 → x8",  // one θ-sized body at the size bound
		"A x1 x2 -> x3 E x4",    // ASCII spelling
	}
	rpSeeds = []string{
		"∀x1 → x2", // repairable minimal universal
		"∀x1x2 → x7 ∀x3x4 → x7 ∀x5x6 → x7", // θ=3 bodies per head (Thm 3.6 bound)
		"∃x1x2 ∃x2x3 ∃x3x4 ∃x1x4",          // k overlapping conjunctions
		"∀x5 ∀x1x2 → x4 ∃x3",               // head-only part beside Horn parts
		"∀x1 → x3 ∀x2 → x3 ∃x1x2",          // shared head, conj over bodies
	}
	verifySeeds = [][2]string{
		{"∀x1x2 → x3 ∃x4", "∀x1x2 → x3 ∃x4"}, // equivalent pair: must verify
		{"∃x1x2x3 ∃x4", "∀x1x2 → x3 ∃x4"},    // dropped guarantee-clause witness
		{"∀x2 → x3 ∃x1", "∀x1 → x3 ∃x2"},     // permuted variables
		{"∃x1", "∃x2"},                       // disjoint singletons
		{"∀x1", "∃x1"},                       // quantifier flip on one variable
	}
)

func fuzzCheck(t *testing.T, c Case) {
	t.Helper()
	for _, d := range CheckCase(c, Options{}).Disagreements {
		t.Errorf("%s", d)
	}
}

// FuzzQhorn1RoundTrip: any parseable qhorn-1 query must round-trip
// through learn.Qhorn1 and every cross-validating judge.
func FuzzQhorn1RoundTrip(f *testing.F) {
	for _, s := range qhorn1Seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, ok := CaseFromShorthand(ClassQhorn1, s)
		if !ok {
			t.Skip()
		}
		fuzzCheck(t, c)
	})
}

// FuzzRolePreservingRoundTrip: same for learn.RolePreserving, with
// inputs repaired into the class instead of rejected.
func FuzzRolePreservingRoundTrip(f *testing.F) {
	for _, s := range rpSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, ok := CaseFromShorthand(ClassRP, s)
		if !ok {
			t.Skip()
		}
		fuzzCheck(t, c)
	})
}

// FuzzVerifySoundness: for any pair (given, hidden) of role-preserving
// queries, the verification set of given run against an oracle for
// hidden must answer Correct exactly when the two are equivalent
// (Theorem 4.2).
func FuzzVerifySoundness(f *testing.F) {
	for _, pair := range verifySeeds {
		f.Add(pair[0], pair[1])
	}
	f.Fuzz(func(t *testing.T, given, hidden string) {
		c, ok := VerifyCaseFromShorthand(given, hidden)
		if !ok {
			t.Skip()
		}
		fuzzCheck(t, c)
	})
}
