package difffuzz

import (
	"fmt"
	"math/rand"
	"sync"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// Sampled-judge pool sizes: enough candidates that the elimination has
// real work to do, few enough that the per-case matrix build stays in
// the low milliseconds (the sampled matrix depends on the hidden query
// through its seeded pool, so it cannot be cached across cases).
const (
	bruteSampleQueries = 160
	bruteSampleObjects = 128
)

// bruteMatrixCache holds one exhaustive answer matrix per (universe
// size, matrix options) key. The exhaustive judge's candidates and
// question pool are functions of the universe alone, so the matrix —
// the expensive part, |AllQueries| × |AllObjects| answers — is shared
// by every case on that universe for the life of the process.
var bruteMatrixCache sync.Map

// bruteMatrixFor returns the process-cached exhaustive answer matrix
// for u under the options' matrix configuration. Concurrent callers may
// race to build; the loser's matrix is closed and the winner's shared.
func bruteMatrixFor(u boolean.Universe, opt Options) (*brute.Matrix, error) {
	mo := opt.Matrix
	mo.Registry = nil // judges are metric-silent
	key := fmt.Sprintf("%d|%d|%d|%t|%t|%s", u.N(), mo.Workers, mo.ShardSize, mo.Compress, mo.Scalar, mo.SpillDir)
	if m, ok := bruteMatrixCache.Load(key); ok {
		return m.(*brute.Matrix), nil
	}
	m, err := brute.NewMatrixOpts(query.AllQueries(u), boolean.AllObjects(u), mo)
	if err != nil {
		return nil, err
	}
	if prev, loaded := bruteMatrixCache.LoadOrStore(key, m); loaded {
		m.Close()
		return prev.(*brute.Matrix), nil
	}
	return m, nil
}

// judgeBruteSampled is the sampled brute cross-check for universes past
// the exhaustive range: a seeded draw of candidate queries — always
// including the hidden query's normal form — eliminated over a seeded
// draw of probe objects. The sample is a pure function of the hidden
// query, so a failing case keeps failing. A sampled pool need not
// separate every candidate pair, so ErrAmbiguous is tolerated; but when
// elimination does single out a candidate, every survivor was
// semantically equivalent, so the winner must be equivalent to the
// hidden query — anything else is a disagreement in the learner or the
// equivalence decision.
func judgeBruteSampled(res *CaseResult, c Case, opt Options, fail func(kind Kind, w Witness, hasW bool, format string, args ...interface{})) {
	u := c.Hidden.U
	srng := rand.New(rand.NewSource(witnessSeed(c.Hidden, c.Hidden) ^ 0x62727574)) // "brut"
	candidates := query.SampleQueries(srng, u, bruteSampleQueries)
	nf := c.Hidden.Normalize()
	present := false
	for _, q := range candidates {
		if q.Equal(nf) {
			present = true
			break
		}
	}
	if !present {
		candidates = append(candidates, nf)
	}
	pool := boolean.SampleObjects(srng, u, bruteSampleObjects)
	mo := opt.Matrix
	mo.Registry = nil
	m, err := brute.NewMatrixOpts(candidates, pool, mo)
	if err != nil {
		fail(KindBrute, Witness{}, false, "sampled brute matrix build: %v", err)
		return
	}
	defer m.Close()
	bres, err := m.Learn(oracle.Target(c.Hidden))
	switch {
	case err == brute.ErrAmbiguous:
		// The sampled pool did not separate every candidate pair —
		// expected sometimes; not a disagreement.
	case err != nil:
		fail(KindBrute, Witness{}, false, "sampled brute.Learn: %v", err)
	default:
		res.Questions += bres.Questions
		if !bres.Learned.Equivalent(c.Hidden) {
			fail(KindBrute, Witness{}, false,
				"sampled brute learned %s, not equivalent to hidden %s", bres.Learned, c.Hidden)
		}
	}
}
