package difffuzz

import (
	"path/filepath"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// TestKernelJudgeCorpusReplay replays every curated repro through the
// compiled-vs-interpreted kernel judge: no corpus query may separate
// the two evaluators, directly (KernelWitness) or through the full
// battery (no KindKernel disagreement).
func TestKernelJudgeCorpusReplay(t *testing.T) {
	cases, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("testdata/corpus is empty — seed corpus missing")
	}
	for _, c := range cases {
		queries := []query.Query{c.Hidden}
		if c.Class == ClassVerify {
			queries = append(queries, c.Given)
		}
		for _, q := range queries {
			if w, found := KernelWitness(q, Options{}); found {
				t.Errorf("case %s: kernel witness %s on %s", c, w.Format(q.U), q)
			}
		}
		res := CheckCase(c, Options{})
		for _, d := range res.Disagreements {
			if d.Kind == KindKernel {
				t.Errorf("case %s: %s", c, d)
			}
		}
	}
}

// TestKernelJudgeSeededRuns is the in-repo slice of the CI gate: a
// seeded fuzz sweep during which the always-on kernel judge sees every
// generated and learned query. CI runs the same sweep at ≥500 runs.
func TestKernelJudgeSeededRuns(t *testing.T) {
	runs := 60
	if testing.Short() {
		runs = 15
	}
	rep := Run(Config{Seed: 99, Runs: runs})
	for _, d := range rep.Disagreements {
		if d.Kind == KindKernel {
			t.Errorf("%s", d)
		}
	}
	if !rep.OK() {
		t.Errorf("fuzz run not clean: %s", rep.Summary())
	}
}

// TestKernelWitnessDeterministic: KernelWitness is a pure function of
// the query — the minimizer and the corpus depend on it.
func TestKernelWitnessDeterministic(t *testing.T) {
	u := boolean.MustUniverse(9)
	q := query.MustParse(u, "∀x1x2 → x8 ∀x3 → x9 ∃x4x5 ∃x5x6x7")
	w1, f1 := KernelWitness(q, Options{})
	w2, f2 := KernelWitness(q, Options{})
	if f1 != f2 || (f1 && w1.Key() != w2.Key()) {
		t.Fatalf("KernelWitness not deterministic: (%v,%v) vs (%v,%v)", w1, f1, w2, f2)
	}
	if f1 {
		t.Fatalf("kernel disagrees with interpreter on %s: witness %s", q, w1.Format(u))
	}
}
