package difffuzz

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// warpDropFirst corrupts a learned query by deleting its first
// expression — the injected bug the engine must catch (no real
// disagreement between the repository's implementations survives the
// clean-run tests, so detection is proven on a known mutation).
func warpDropFirst(q query.Query) query.Query {
	if len(q.Exprs) == 0 {
		return q
	}
	return dropExprAt(q, 0)
}

// TestInjectedBugDetected: warping the learner's output makes the
// engine report a disagreement on every class.
func TestInjectedBugDetected(t *testing.T) {
	opt := Options{Warp: warpDropFirst}
	rng := rand.New(rand.NewSource(23))
	for _, class := range []Class{ClassQhorn1, ClassRP} {
		detected := 0
		for i := 0; i < 20; i++ {
			c := GenCase(rng, class, 3, 6)
			if len(CheckCase(c, opt).Disagreements) > 0 {
				detected++
			}
		}
		if detected == 0 {
			t.Errorf("%s: injected bug never detected in 20 cases", class)
		}
	}
}

// TestMinimizeShrinksInjectedBug is the acceptance-criterion test:
// the minimizer shrinks a failing repro to at most 3 parts
// (expressions) while it keeps failing, and the result is locally
// minimal — no single further shrink still fails.
func TestMinimizeShrinksInjectedBug(t *testing.T) {
	opt := Options{Warp: warpDropFirst}
	fails := func(c Case) bool { return len(CheckCase(c, opt).Disagreements) > 0 }
	rng := rand.New(rand.NewSource(29))
	shrunkOnce := false
	for i := 0; i < 10; i++ {
		c := GenCase(rng, ClassRP, 5, 8)
		if !fails(c) {
			continue
		}
		small := Minimize(c, fails)
		if !fails(small) {
			t.Fatalf("minimized case no longer fails: %s", small)
		}
		if got := small.Hidden.Size(); got > 3 {
			t.Errorf("minimized hidden query has %d parts, want <= 3: %s", got, small.Hidden)
		}
		if small.Hidden.N() >= c.Hidden.N() && small.Hidden.Size() >= c.Hidden.Size() && c.Hidden.Size() > 1 {
			t.Errorf("minimizer did not shrink %s (still %s)", c, small)
		} else {
			shrunkOnce = true
		}
		for _, cand := range shrinks(small) {
			if validCase(cand) && fails(cand) {
				t.Errorf("result %s not locally minimal: shrink %s still fails", small, cand)
				break
			}
		}
	}
	if !shrunkOnce {
		t.Fatal("no failing case was generated — injected bug too weak")
	}
}

// TestMinimizePassingCaseUntouched: a case that does not fail is
// returned unchanged.
func TestMinimizePassingCaseUntouched(t *testing.T) {
	c := GenCase(rand.New(rand.NewSource(31)), ClassQhorn1, 4, 4)
	out := Minimize(c, func(Case) bool { return false })
	if !out.Hidden.Equal(c.Hidden) {
		t.Errorf("passing case was modified: %s -> %s", c, out)
	}
}

// TestMinimizeKeepsClass: shrinking a qhorn-1 case never leaves the
// class, and a verify case keeps both queries role-preserving.
func TestMinimizeKeepsClass(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	opt := Options{Warp: warpDropFirst}
	fails := func(c Case) bool { return len(CheckCase(c, opt).Disagreements) > 0 }
	for i := 0; i < 10; i++ {
		c := GenCase(rng, ClassQhorn1, 4, 6)
		if !fails(c) {
			continue
		}
		small := Minimize(c, fails)
		if !small.Hidden.IsQhorn1() {
			t.Fatalf("minimized qhorn-1 case left the class: %s", small.Hidden)
		}
	}
}

// TestDropUniverseVar: removing a variable renumbers the rest and
// drops the expressions that depended on it.
func TestDropUniverseVar(t *testing.T) {
	u := boolean.MustUniverse(4)
	q := query.MustParse(u, "∀x1x2 → x3 ∃x4")
	got := dropUniverseVar(q, 2) // drop x3: the universal loses its head
	if got.N() != 3 {
		t.Fatalf("universe = %d, want 3", got.N())
	}
	want := query.MustParse(boolean.MustUniverse(3), "∃x3")
	if !got.Equal(want) {
		t.Errorf("dropUniverseVar = %s, want %s", got, want)
	}

	got = dropUniverseVar(q, 0) // drop x1: body shrinks, x2..x4 shift down
	want = query.MustParse(boolean.MustUniverse(3), "∀x1 → x2 ∃x3")
	if !got.Equal(want) {
		t.Errorf("dropUniverseVar = %s, want %s", got, want)
	}
}

// TestValidCase: class membership is enforced per class.
func TestValidCase(t *testing.T) {
	u := boolean.MustUniverse(3)
	q1 := query.MustParse(u, "∀x1 → x2 ∃x3")
	rpOnly := query.MustParse(u, "∀x1 → x2") // not qhorn-1: x3 uncovered
	cases := []struct {
		c    Case
		want bool
	}{
		{Case{Class: ClassQhorn1, Hidden: q1}, true},
		{Case{Class: ClassQhorn1, Hidden: rpOnly}, false},
		{Case{Class: ClassRP, Hidden: rpOnly}, true},
		{Case{Class: ClassVerify, Hidden: q1, Given: rpOnly}, true},
		{Case{Class: ClassVerify, Hidden: q1, Given: query.MustParse(u, "∀x1 → x2 ∀x2 → x3")}, false},
	}
	for _, tc := range cases {
		if got := validCase(tc.c); got != tc.want {
			t.Errorf("validCase(%s) = %v, want %v", tc.c, got, tc.want)
		}
	}
}
