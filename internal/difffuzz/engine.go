package difffuzz

// The run-engine options-matrix judge (Options.EngineMatrix): the
// engine's contract is that cross-cutting options — batching, worker
// pools, budgets, memoization, counters, instrumentation — never
// change WHAT is asked, only how the asking is arranged. This judge
// replays a case's learning run and verification run under every
// meaningful option combination and compares the question stream
// (phase, question, answer) and the per-phase stats against the plain
// serial reference — in exact order for non-batching options, as a
// multiset for the batched ones. Any difference is a KindEngine
// disagreement.

import (
	"fmt"
	"sort"

	"qhorn/internal/learn"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/run"
	"qhorn/internal/verify"
)

// engineStep is one question of a recorded run, in comparable form.
type engineStep struct {
	phase  string
	key    string
	answer bool
}

// recordSteps returns a WithSteps option appending each question to
// *dst in ask order.
func recordSteps(dst *[]engineStep) run.Option {
	return run.WithSteps(func(s run.Step) {
		*dst = append(*dst, engineStep{phase: s.Phase, key: s.Question.Key(), answer: s.Answer})
	})
}

// stepsDiff describes the first divergence between two step streams,
// or "" when they are identical.
func stepsDiff(ref, got []engineStep) string {
	if len(ref) != len(got) {
		return fmt.Sprintf("%d questions vs %d serial", len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			return fmt.Sprintf("question %d is {%s %s %v}, serial asked {%s %s %v}",
				i, got[i].phase, got[i].key, got[i].answer, ref[i].phase, ref[i].key, ref[i].answer)
		}
	}
	return ""
}

// sortSteps returns the stream in canonical order for the
// order-insensitive comparison the batched combinations get: batching
// interleaves independent per-head question streams into waves
// (docs/PARALLELISM.md), so the multiset of questions is the
// invariant, not the global order.
func sortSteps(steps []engineStep) []engineStep {
	out := append([]engineStep(nil), steps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].phase != out[j].phase {
			return out[i].phase < out[j].phase
		}
		if out[i].key != out[j].key {
			return out[i].key < out[j].key
		}
		return !out[i].answer && out[j].answer
	})
	return out
}

// engineCombo is one cell of the options matrix. Combinations that
// batch (WithBatch, WithParallel) interleave independent question
// streams into waves, so they are held to the order-insensitive half
// of the contract — identical question multiset and stats — while the
// rest must reproduce the serial stream in order.
type engineCombo struct {
	name     string
	opts     []run.Option
	reorders bool
}

// engineCombos returns the option combinations of the matrix. budget
// is the serial run's total question count, so the budgeted run must
// complete without panicking.
func engineCombos(budget int) []engineCombo {
	return []engineCombo{
		{"batch", []run.Option{run.WithBatch()}, true},
		{"parallel-2", []run.Option{run.WithParallel(2)}, true},
		{"parallel-8", []run.Option{run.WithParallel(8)}, true},
		{"budget", []run.Option{run.WithBudget(budget)}, false},
		{"memo", []run.Option{run.WithMemo()}, false},
		{"counter", []run.Option{run.WithCounter()}, false},
		{"observed", []run.Option{run.WithInstrumentation(run.Instrumentation{
			Spans:   obs.NewTracer(obs.NewTreeSink()),
			Metrics: obs.NewRegistry(),
		})}, false},
	}
}

// judgeEngineMatrixLearn re-learns the hidden query through every
// option combination and reports each one that breaks the bit-identity
// contract against the plain serial engine run.
func judgeEngineMatrixLearn(c Case, res *CaseResult) {
	u := c.Hidden.U
	alg := run.Qhorn1
	if c.Class == ClassRP {
		alg = run.RolePreserving
	}
	collect := func(extra ...run.Option) ([]engineStep, run.Stats) {
		var steps []engineStep
		opts := append([]run.Option{run.WithAlgorithm(alg), recordSteps(&steps)}, extra...)
		_, st := learn.Run(u, oracle.Target(c.Hidden), opts...)
		return steps, st
	}
	refSteps, refStats := collect()
	res.Questions += refStats.Total()

	fail := func(name, format string, args ...interface{}) {
		res.Disagreements = append(res.Disagreements, Disagreement{
			Kind: KindEngine, Case: c,
			Detail: fmt.Sprintf("learn option %s: %s", name, fmt.Sprintf(format, args...)),
		})
	}
	for _, combo := range engineCombos(refStats.Total()) {
		steps, stats := collect(combo.opts...)
		res.Questions += stats.Total()
		if stats != refStats {
			fail(combo.name, "stats %+v differ from serial %+v", stats, refStats)
		}
		ref := refSteps
		if combo.reorders {
			ref, steps = sortSteps(ref), sortSteps(steps)
		}
		if d := stepsDiff(ref, steps); d != "" {
			fail(combo.name, "question stream diverged: %s", d)
		}
	}
}

// judgeEngineMatrixVerify runs the Given query's verification set
// through every option combination and reports each one whose result
// or question stream differs from the plain serial engine run.
func judgeEngineMatrixVerify(c Case, vs verify.Set, res *CaseResult) {
	collect := func(extra ...run.Option) ([]engineStep, verify.Result) {
		var steps []engineStep
		opts := append([]run.Option{recordSteps(&steps)}, extra...)
		return steps, vs.RunWith(oracle.Target(c.Hidden), opts...)
	}
	refSteps, refRes := collect()
	res.Questions += refRes.QuestionsAsked

	fail := func(name, format string, args ...interface{}) {
		res.Disagreements = append(res.Disagreements, Disagreement{
			Kind: KindEngine, Case: c,
			Detail: fmt.Sprintf("verify option %s: %s", name, fmt.Sprintf(format, args...)),
		})
	}
	// The verification set has a fixed question order that batching
	// preserves (AskAll is aligned with the set), so every combination
	// is held to the exact ordered stream.
	for _, combo := range engineCombos(refRes.QuestionsAsked) {
		steps, vres := collect(combo.opts...)
		res.Questions += vres.QuestionsAsked
		if vres.Correct != refRes.Correct || vres.QuestionsAsked != refRes.QuestionsAsked ||
			len(vres.Disagreements) != len(refRes.Disagreements) {
			fail(combo.name, "result (correct=%v, %d questions, %d disagreements) differs from serial (correct=%v, %d questions, %d disagreements)",
				vres.Correct, vres.QuestionsAsked, len(vres.Disagreements),
				refRes.Correct, refRes.QuestionsAsked, len(refRes.Disagreements))
			continue
		}
		if d := stepsDiff(refSteps, steps); d != "" {
			fail(combo.name, "question stream diverged: %s", d)
		}
	}
}
