package difffuzz

import (
	"math/rand"
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/query"
)

// TestRunClean: the engine finds no disagreements between the
// learners, the verifier, brute force, and ground-truth semantics on
// seeded random cases — the repository's implementations agree.
func TestRunClean(t *testing.T) {
	rep := Run(Config{Seed: 1, Runs: 300})
	if !rep.OK() {
		for i, d := range rep.Disagreements {
			if i > 5 {
				break
			}
			t.Errorf("disagreement: %s", d)
		}
	}
	if rep.CasesByClass[ClassQhorn1] == 0 || rep.CasesByClass[ClassRP] == 0 || rep.CasesByClass[ClassVerify] == 0 {
		t.Errorf("expected cases of every class, got %v", rep.CasesByClass)
	}
	if rep.BruteCases == 0 {
		t.Error("expected at least one brute-force cross-check on small universes")
	}
	if rep.Questions == 0 {
		t.Error("expected membership questions to be counted")
	}
	if !strings.Contains(rep.Summary(), "disagreements: 0") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

// TestRunDeterministic: the same config yields the identical report —
// the property CI smoke runs and repro replays rely on.
func TestRunDeterministic(t *testing.T) {
	a := Run(Config{Seed: 42, Runs: 60})
	b := Run(Config{Seed: 42, Runs: 60})
	if a.Questions != b.Questions || len(a.Disagreements) != len(b.Disagreements) {
		t.Errorf("same seed diverged: %d/%d questions, %d/%d disagreements",
			a.Questions, b.Questions, len(a.Disagreements), len(b.Disagreements))
	}
	for class, n := range a.CasesByClass {
		if b.CasesByClass[class] != n {
			t.Errorf("class %s: %d vs %d cases", class, n, b.CasesByClass[class])
		}
	}
}

// TestRunClassRestriction: restricting the class draws only that
// class (plus derived verify cases).
func TestRunClassRestriction(t *testing.T) {
	rep := Run(Config{Seed: 3, Runs: 30, Class: ClassQhorn1})
	if rep.CasesByClass[ClassRP] != 0 {
		t.Errorf("rp cases generated under qhorn1 restriction: %v", rep.CasesByClass)
	}
	if rep.CasesByClass[ClassQhorn1] != 30 {
		t.Errorf("expected 30 qhorn1 cases, got %v", rep.CasesByClass)
	}
}

// TestRunObservability: the engine maintains the fuzz metrics and
// emits a root span.
func TestRunObservability(t *testing.T) {
	tree := obs.NewTreeSink()
	tr := obs.NewTracer(tree)
	reg := obs.NewRegistry()
	rep := Run(Config{Seed: 5, Runs: 10, Spans: tr, Metrics: reg})
	if got := reg.SumCounter(obs.MetricFuzzCases); got < 10 {
		t.Errorf("fuzz case counter = %d, want >= 10", got)
	}
	if !rep.OK() {
		t.Fatalf("unexpected disagreements: %v", rep.Disagreements)
	}
	if got := reg.SumCounter(obs.MetricFuzzDisagreements); got != 0 {
		t.Errorf("disagreement counter = %d on a clean run", got)
	}
	names := tree.SpanNames()
	foundRoot := false
	for _, name := range names {
		if name == "difffuzz" {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Errorf("trace missing root span, got %v", names)
	}
}

// TestGenCaseClasses: generated cases are valid members of their
// declared class across universe sizes.
func TestGenCaseClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		for _, class := range []Class{ClassQhorn1, ClassRP, ClassVerify} {
			c := GenCase(rng, class, 2, 8)
			if n := c.Hidden.N(); n < 2 || n > 8 {
				t.Fatalf("%s: universe size %d outside [2,8]", class, n)
			}
			if !validCase(c) {
				t.Fatalf("%s: generated invalid case %s", class, c)
			}
		}
	}
}

// TestMutantProperties: mutants are valid role-preserving queries
// structurally distinct from the original, and every mutator fires.
func TestMutantProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fired := map[string]int{}
	for i := 0; i < 400; i++ {
		c := GenCase(rng, ClassRP, 3, 8)
		m, name, ok := Mutant(rng, c.Hidden)
		if !ok {
			continue
		}
		fired[name]++
		if err := m.Validate(); err != nil {
			t.Fatalf("mutant %s of %s invalid: %v", m, c.Hidden, err)
		}
		if !m.IsRolePreserving() {
			t.Fatalf("mutant %s of %s is not role-preserving", m, c.Hidden)
		}
		if m.Equal(c.Hidden) {
			t.Fatalf("mutant %s equals original", m)
		}
	}
	for _, m := range mutators {
		if fired[m.name] == 0 {
			t.Errorf("mutator %q never produced a mutant", m.name)
		}
	}
}

// TestMutantTrivialQuery: ⊤ admits no mutation other than add-conj,
// and Mutant must not loop forever on it.
func TestMutantTrivialQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	top := query.Query{U: boolean.MustUniverse(3)}
	m, name, ok := Mutant(rng, top)
	if ok && (m.Validate() != nil || m.Equal(top)) {
		t.Fatalf("bad mutant %s (%s) of ⊤", m, name)
	}
}

// TestSemanticWitnessExhaustive: on small universes the witness
// search is exhaustive, so it agrees exactly with normal-form
// equivalence on role-preserving pairs (Proposition 4.1).
func TestSemanticWitnessExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	opt := Options{}.withDefaults()
	for i := 0; i < 150; i++ {
		a := GenCase(rng, ClassRP, 2, 3).Hidden
		b := GenCase(rng, ClassRP, a.N(), a.N()).Hidden
		w, found := SemanticWitness(a, b, opt)
		if found == a.Equivalent(b) {
			t.Fatalf("witness search and Equivalent disagree on %s vs %s", a, b)
		}
		if found && a.Eval(w) == b.Eval(w) {
			t.Fatalf("witness %s does not separate %s and %s", w.Format(a.U), a, b)
		}
	}
}

// TestSemanticWitnessLargeUniverse: on universes beyond the
// exhaustive bound, the verification-set probes still find a witness
// for structurally different queries (Theorem 4.2).
func TestSemanticWitnessLargeUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	opt := Options{}.withDefaults()
	for i := 0; i < 60; i++ {
		a := GenCase(rng, ClassRP, 5, 8).Hidden
		m, _, ok := Mutant(rng, a)
		if !ok || a.Equivalent(m) {
			continue
		}
		w, found := SemanticWitness(a, m, opt)
		if !found {
			t.Fatalf("no witness for inequivalent pair %s vs %s", a, m)
		}
		if a.Eval(w) == m.Eval(w) {
			t.Fatalf("witness %s does not separate %s and %s", w.Format(a.U), a, m)
		}
	}
}

// TestShrinkWitness: shrunk witnesses still separate and are minimal
// under single-tuple removal.
func TestShrinkWitness(t *testing.T) {
	u := boolean.MustUniverse(3)
	a := query.MustParse(u, "∀x1 → x2 ∃x3")
	b := query.MustParse(u, "∃x3")
	w := boolean.NewSet(
		boolean.FromVars(0),
		boolean.FromVars(2),
		u.All(),
	)
	if a.Eval(w) == b.Eval(w) {
		t.Fatal("fixture does not separate")
	}
	small := ShrinkWitness(a, b, w)
	if a.Eval(small) == b.Eval(small) {
		t.Fatal("shrunk witness no longer separates")
	}
	for _, tup := range small.Tuples() {
		cand := small.Without(tup)
		if a.Eval(cand) != b.Eval(cand) {
			t.Errorf("witness %s not minimal: can drop %s", small.Format(u), u.Format(tup))
		}
	}
}

// TestCheckCaseVerifyEquivalentGiven: a verify case whose given query
// IS the hidden one must pass (the verifier answers Correct).
func TestCheckCaseVerifyEquivalentGiven(t *testing.T) {
	u := boolean.MustUniverse(4)
	h := query.MustParse(u, "∀x1x2 → x3 ∃x4")
	res := CheckCase(Case{Class: ClassVerify, Hidden: h, Given: h}, Options{})
	if len(res.Disagreements) != 0 {
		t.Errorf("self-verify flagged: %v", res.Disagreements)
	}
}

// TestCheckCaseVerifySkipsNonRolePreserving: cases outside the
// verifier's domain are skipped, not reported.
func TestCheckCaseVerifySkipsNonRolePreserving(t *testing.T) {
	u := boolean.MustUniverse(3)
	bad := query.MustParse(u, "∀x1 → x2 ∀x2 → x3")
	res := CheckCase(Case{Class: ClassVerify, Hidden: bad, Given: bad}, Options{})
	if len(res.Disagreements) != 0 || res.Questions != 0 {
		t.Errorf("non-role-preserving verify case was not skipped: %+v", res)
	}
}

// TestDisagreementString: the rendered disagreement names the kind,
// the case, and the witness.
func TestDisagreementString(t *testing.T) {
	u := boolean.MustUniverse(2)
	d := Disagreement{
		Kind:       KindLearnEquiv,
		Case:       Case{Class: ClassQhorn1, Hidden: query.MustParse(u, "∀x1 ∃x2")},
		Witness:    boolean.NewSet(boolean.FromVars(0)),
		HasWitness: true,
		Detail:     "boom",
	}
	s := d.String()
	for _, want := range []string{"learn-equiv", "qhorn1", "boom", "witness"} {
		if !strings.Contains(s, want) {
			t.Errorf("disagreement string %q missing %q", s, want)
		}
	}
}
