package difffuzz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// TestReproRoundTrip: FormatRepro → ParseRepro preserves the case for
// every class.
func TestReproRoundTrip(t *testing.T) {
	u := boolean.MustUniverse(4)
	cases := []Case{
		{Class: ClassQhorn1, Hidden: query.MustParse(u, "∀x1x2 → x3 ∃x4")},
		{Class: ClassRP, Hidden: query.MustParse(u, "∀x1 → x2 ∃x3x4")},
		{Class: ClassVerify,
			Hidden: query.MustParse(u, "∀x1x2 → x3 ∃x4"),
			Given:  query.MustParse(u, "∃x1x2x3 ∃x4")},
	}
	for _, c := range cases {
		d := Disagreement{
			Kind: KindLearnEquiv, Case: c, Detail: "fixture",
			Witness: boolean.NewSet(u.All()), HasWitness: true,
		}
		back, err := ParseRepro([]byte(FormatRepro(d)))
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if back.Class != c.Class || !back.Hidden.Equal(c.Hidden) || !back.Given.Equal(c.Given) {
			t.Errorf("round trip changed case: %s -> %s", c, back)
		}
	}
}

// TestParseReproErrors: malformed repro files produce errors, not
// panics or silent defaults.
func TestParseReproErrors(t *testing.T) {
	bad := []string{
		"class: nope\nn: 2\nhidden: ∃x1",
		"class: rp\nn: 0\nhidden: ∃x1",
		"class: rp\nn: 99\nhidden: ∃x1",
		"class: rp\nn: 2\nhidden: ∃x9",
		"class: verify\nn: 2\nhidden: ∃x1\ngiven: bogus",
		"class: rp\nn: 2\nhidden: ∃x1\nnot-a-kv-line",
	}
	for _, s := range bad {
		if _, err := ParseRepro([]byte(s)); err == nil {
			t.Errorf("ParseRepro(%q) succeeded, want error", s)
		}
	}
}

// TestWriteReproAndLoadCorpus: repros persist under stable names and
// load back in sorted order; a missing directory is an empty corpus.
func TestWriteReproAndLoadCorpus(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	u := boolean.MustUniverse(3)
	d := Disagreement{
		Kind: KindBrute,
		Case: Case{Class: ClassRP, Hidden: query.MustParse(u, "∃x1x2 ∃x3")},
	}
	path1, err := WriteRepro(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	path2, err := WriteRepro(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	if path1 != path2 {
		t.Errorf("same repro mapped to different files: %s vs %s", path1, path2)
	}
	if !strings.HasPrefix(filepath.Base(path1), "brute-") {
		t.Errorf("repro file %s not named after its kind", path1)
	}
	cases, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 1 || !cases[0].Hidden.Equal(d.Case.Hidden) {
		t.Errorf("corpus = %v, want the single written case", cases)
	}
	if cases, err := LoadCorpus(filepath.Join(dir, "missing")); err != nil || cases != nil {
		t.Errorf("missing dir: cases=%v err=%v, want empty, nil", cases, err)
	}
}

// TestCorpusReplay replays every checked-in repro under
// testdata/corpus through the full judge battery. The corpus encodes
// the paper's tricky shapes; all must pass.
func TestCorpusReplay(t *testing.T) {
	cases, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("testdata/corpus is empty — seed corpus missing")
	}
	for _, c := range cases {
		res := CheckCase(c, Options{})
		for _, d := range res.Disagreements {
			t.Errorf("%s", d)
		}
	}
}

// TestCorpusLoadError: unparseable corpus entries surface the file
// name.
func TestCorpusLoadError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.repro"), []byte("class: nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil || !strings.Contains(err.Error(), "bad.repro") {
		t.Errorf("LoadCorpus error = %v, want mention of bad.repro", err)
	}
}

// TestCaseFromShorthand: fuzz decoding enforces the class, sizes the
// universe from the text, and rejects oversized or unparseable input.
func TestCaseFromShorthand(t *testing.T) {
	if c, ok := CaseFromShorthand(ClassQhorn1, "∀x1x2 → x3 ∃x4"); !ok || !c.Hidden.IsQhorn1() || c.Hidden.N() != 4 {
		t.Errorf("valid qhorn-1 shorthand rejected: %v %v", c, ok)
	}
	if _, ok := CaseFromShorthand(ClassQhorn1, "∀x1 → x2 ∃x2x3"); ok {
		t.Error("non-qhorn-1 input accepted into qhorn-1 class (x2 repeats across parts)")
	}
	if c, ok := CaseFromShorthand(ClassRP, "∀x1 → x2 ∀x2 → x3"); !ok || !c.Hidden.IsRolePreserving() {
		t.Errorf("rp shorthand not repaired: %v %v", c, ok)
	}
	for _, s := range []string{"", "∃x99", "garbage", "∀x1 →"} {
		if _, ok := CaseFromShorthand(ClassRP, s); ok {
			t.Errorf("bad shorthand %q accepted", s)
		}
	}
}

// TestVerifyCaseFromShorthand: both queries share the joint universe.
func TestVerifyCaseFromShorthand(t *testing.T) {
	c, ok := VerifyCaseFromShorthand("∃x1", "∃x5")
	if !ok || c.Hidden.N() != 5 || c.Given.N() != 5 {
		t.Errorf("joint universe not used: %v %v", c, ok)
	}
	if _, ok := VerifyCaseFromShorthand("∃x1", "nope"); ok {
		t.Error("unparseable hidden accepted")
	}
	if _, ok := VerifyCaseFromShorthand("", ""); ok {
		t.Error("empty pair accepted")
	}
}

// TestRepairRolePreserving: repair reaches the class and is the
// identity on queries already in it.
func TestRepairRolePreserving(t *testing.T) {
	u := boolean.MustUniverse(3)
	good := query.MustParse(u, "∀x1 → x2 ∃x3")
	if got := RepairRolePreserving(good); !got.Equal(good) {
		t.Errorf("repair changed a role-preserving query: %s", got)
	}
	bad := query.MustParse(u, "∀x1 → x2 ∀x2 → x3")
	got := RepairRolePreserving(bad)
	if !got.IsRolePreserving() {
		t.Errorf("repair failed: %s", got)
	}
	if got.Size() >= bad.Size() {
		t.Errorf("repair did not drop an expression: %s", got)
	}
}

// TestMaxVarIndex: universe sizing reads the largest index and flags
// absurd ones for rejection.
func TestMaxVarIndex(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"∀x1x2 → x3", 3},
		{"∃x7", 7},
		{"no vars here", 0},
		{"x", 0},
		{"X12x3", 12},
	}
	for _, tc := range cases {
		if got := maxVarIndex(tc.in); got != tc.want {
			t.Errorf("maxVarIndex(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := maxVarIndex("∃x99999999999999999999"); got <= boolean.MaxVars {
		t.Errorf("huge index = %d, want > MaxVars for rejection", got)
	}
}
