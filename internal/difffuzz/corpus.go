package difffuzz

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// maxFuzzVars caps the universe size decoded from fuzz inputs and
// repro files: large universes make single checks slow without adding
// shape coverage, which is what fuzzing explores.
const maxFuzzVars = 8

// FormatRepro renders a disagreement as a replayable corpus file. The
// format is line-oriented "key: value" with '#' comments; queries use
// the paper's shorthand, so repros are readable and hand-editable:
//
//	# qhorn differential-fuzz repro
//	class: rp
//	n: 5
//	hidden: ∀x1x4 → x5 ∃x2x3
//	kind: learn-equiv
//	detail: ...
func FormatRepro(d Disagreement) string {
	var b strings.Builder
	b.WriteString("# qhorn differential-fuzz repro — replayed by TestCorpusReplay,\n")
	b.WriteString("# reproduced with: go run ./cmd/qhornfuzz -corpus <dir containing this file>\n")
	fmt.Fprintf(&b, "class: %s\n", d.Case.Class)
	fmt.Fprintf(&b, "n: %d\n", d.Case.Hidden.N())
	fmt.Fprintf(&b, "hidden: %s\n", d.Case.Hidden)
	if d.Case.Class == ClassVerify {
		fmt.Fprintf(&b, "given: %s\n", d.Case.Given)
	}
	if d.Kind != "" {
		fmt.Fprintf(&b, "kind: %s\n", d.Kind)
	}
	if d.Detail != "" {
		fmt.Fprintf(&b, "detail: %s\n", strings.ReplaceAll(d.Detail, "\n", " "))
	}
	if d.HasWitness {
		fmt.Fprintf(&b, "witness: %s\n", d.Witness.Format(d.Case.Hidden.U))
	}
	return b.String()
}

// WriteRepro persists the disagreement under dir as
// <kind>-<content hash>.repro and returns the path. The content hash
// keeps re-runs idempotent: the same repro maps to the same file.
func WriteRepro(dir string, d Disagreement) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	content := FormatRepro(d)
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s", d.Case.Class, d.Case.Hidden, d.Case.Given)
	kind := string(d.Kind)
	if kind == "" {
		kind = "case"
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%016x.repro", kind, h.Sum64()))
	return path, os.WriteFile(path, []byte(content), 0o644)
}

// ParseRepro reads a corpus file back into a Case. Unknown keys are
// ignored so repro files can carry extra diagnostics.
func ParseRepro(data []byte) (Case, error) {
	fields := map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return Case{}, fmt.Errorf("difffuzz: repro line %q is not key: value", line)
		}
		fields[strings.TrimSpace(key)] = strings.TrimSpace(value)
	}
	class := Class(fields["class"])
	switch class {
	case ClassQhorn1, ClassRP, ClassVerify:
	default:
		return Case{}, fmt.Errorf("difffuzz: repro has unknown class %q", fields["class"])
	}
	n, err := strconv.Atoi(fields["n"])
	if err != nil || n < 1 || n > boolean.MaxVars {
		return Case{}, fmt.Errorf("difffuzz: repro has bad universe size %q", fields["n"])
	}
	u := boolean.MustUniverse(n)
	hidden, err := query.Parse(u, fields["hidden"])
	if err != nil {
		return Case{}, fmt.Errorf("difffuzz: repro hidden query: %v", err)
	}
	c := Case{Class: class, Hidden: hidden}
	if class == ClassVerify {
		given, err := query.Parse(u, fields["given"])
		if err != nil {
			return Case{}, fmt.Errorf("difffuzz: repro given query: %v", err)
		}
		c.Given = given
	}
	return c, nil
}

// LoadCorpus parses every *.repro file under dir, sorted by name for
// deterministic replay order. A missing directory is an empty corpus.
func LoadCorpus(dir string) ([]Case, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".repro") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var cases []Case
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		c, err := ParseRepro(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", name, err)
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// CaseFromShorthand decodes a native-fuzz input into a learning case:
// the universe is sized by the largest variable the shorthand
// mentions (capped at maxFuzzVars), the string is parsed as a query,
// and the query must lie in the class — qhorn-1 inputs outside the
// class are rejected (the fuzzer explores the parser there already),
// while role-preservation is repaired by dropping offending universal
// expressions so more of the input space reaches the engine.
func CaseFromShorthand(class Class, s string) (Case, bool) {
	q, ok := parseFuzzQuery(s)
	if !ok {
		return Case{}, false
	}
	switch class {
	case ClassQhorn1:
		if !q.IsQhorn1() {
			return Case{}, false
		}
	default:
		q = RepairRolePreserving(q)
	}
	return Case{Class: class, Hidden: q}, true
}

// VerifyCaseFromShorthand decodes the two-string fuzz input of
// FuzzVerifySoundness: both queries are parsed over the joint
// universe and repaired to role preservation.
func VerifyCaseFromShorthand(given, hidden string) (Case, bool) {
	n := maxVarIndex(given)
	if m := maxVarIndex(hidden); m > n {
		n = m
	}
	if n < 1 || n > maxFuzzVars {
		return Case{}, false
	}
	u := boolean.MustUniverse(n)
	g, err := query.Parse(u, given)
	if err != nil {
		return Case{}, false
	}
	h, err := query.Parse(u, hidden)
	if err != nil {
		return Case{}, false
	}
	return Case{
		Class:  ClassVerify,
		Hidden: RepairRolePreserving(h),
		Given:  RepairRolePreserving(g),
	}, true
}

func parseFuzzQuery(s string) (query.Query, bool) {
	n := maxVarIndex(s)
	if n < 1 || n > maxFuzzVars {
		return query.Query{}, false
	}
	q, err := query.Parse(boolean.MustUniverse(n), s)
	if err != nil {
		return query.Query{}, false
	}
	return q, true
}

// maxVarIndex scans the shorthand for its largest xN index without
// parsing, so fuzz inputs size their own universe.
func maxVarIndex(s string) int {
	max := 0
	rs := []rune(s)
	for i := 0; i < len(rs); i++ {
		if rs[i] != 'x' && rs[i] != 'X' {
			continue
		}
		j := i + 1
		idx := 0
		for j < len(rs) && rs[j] >= '0' && rs[j] <= '9' {
			idx = idx*10 + int(rs[j]-'0')
			j++
			if idx > boolean.MaxVars {
				return idx // caller rejects oversized universes
			}
		}
		if j > i+1 && idx > max {
			max = idx
		}
		i = j - 1
	}
	return max
}

// RepairRolePreserving drops universal Horn expressions until no
// universal head reappears in a body: the deterministic repair that
// coerces arbitrary parsed queries into the verifier's domain.
func RepairRolePreserving(q query.Query) query.Query {
	for !q.IsRolePreserving() {
		// Role preservation only constrains universal Horn
		// expressions: a variable may not be a universal head and a
		// universal body variable at once. Each round drops the first
		// universal touching a violating variable, so the loop
		// terminates (the query loses an expression every iteration).
		var heads, bodies boolean.Tuple
		for _, e := range q.Exprs {
			if e.Quant == query.Forall {
				heads = heads.With(e.Head)
				bodies = bodies.Union(e.Body)
			}
		}
		violating := heads.Intersect(bodies)
		for i, e := range q.Exprs {
			if e.Quant != query.Forall {
				continue
			}
			if violating.Has(e.Head) || e.Body.Intersects(violating) {
				q = dropExprAt(q, i)
				break
			}
		}
	}
	return q
}
