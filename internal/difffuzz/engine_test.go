package difffuzz

import (
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// TestEngineMatrixClean: with the options-matrix judge on, every
// engine option combination reproduces the plain serial run on seeded
// random cases — the bit-identity contract of docs/ENGINE.md holds.
func TestEngineMatrixClean(t *testing.T) {
	rep := Run(Config{Seed: 7, Runs: 40, Options: Options{EngineMatrix: true}})
	if !rep.OK() {
		for i, d := range rep.Disagreements {
			if i > 5 {
				break
			}
			t.Errorf("disagreement: %s", d)
		}
	}
}

// TestEngineMatrixCountsQuestions: the matrix judge's replays add to
// the case's question total (each combination re-learns the query).
func TestEngineMatrixCountsQuestions(t *testing.T) {
	u := boolean.MustUniverse(3)
	h := query.MustParse(u, "∀x1 → x2 ∃x3")
	plain := CheckCase(Case{Class: ClassRP, Hidden: h}, Options{})
	matrix := CheckCase(Case{Class: ClassRP, Hidden: h}, Options{EngineMatrix: true})
	if len(matrix.Disagreements) != 0 {
		t.Fatalf("unexpected disagreements: %v", matrix.Disagreements)
	}
	if matrix.Questions <= plain.Questions {
		t.Errorf("matrix run asked %d questions, plain %d — replays not counted",
			matrix.Questions, plain.Questions)
	}
}

// TestEngineMatrixVerifySide: the verify-side matrix runs on
// ClassVerify cases and reproduces the serial verdict.
func TestEngineMatrixVerifySide(t *testing.T) {
	u := boolean.MustUniverse(3)
	h := query.MustParse(u, "∀x1 → x2")
	g := query.MustParse(u, "∀x1 → x3")
	res := CheckCase(Case{Class: ClassVerify, Hidden: h, Given: g}, Options{EngineMatrix: true})
	for _, d := range res.Disagreements {
		if d.Kind == KindEngine {
			t.Errorf("engine disagreement on inequivalent given: %s", d)
		}
	}
}

// TestStepsDiff: the divergence formatter pinpoints length and
// first-element differences.
func TestStepsDiff(t *testing.T) {
	a := []engineStep{{"p", "k1", true}, {"p", "k2", false}}
	if d := stepsDiff(a, a[:1]); !strings.Contains(d, "1 questions vs 2 serial") {
		t.Errorf("length diff = %q", d)
	}
	b := []engineStep{{"p", "k1", true}, {"q", "k2", false}}
	if d := stepsDiff(a, b); !strings.Contains(d, "question 1") {
		t.Errorf("element diff = %q", d)
	}
	if d := stepsDiff(a, a); d != "" {
		t.Errorf("identical streams diff = %q", d)
	}
}
