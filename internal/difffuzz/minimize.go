package difffuzz

import (
	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// Minimize greedily shrinks a failing case to a locally-minimal one:
// it tries removing a universe variable (remapping indices), dropping
// a whole expression, and removing a single body variable — in that
// order, most aggressive first — and keeps any shrink after which the
// case still fails, until no single shrink does. fails must be a
// deterministic predicate; CheckCase is, so the usual call is
//
//	small := Minimize(c, func(c Case) bool {
//		return len(CheckCase(c, opt).Disagreements) > 0
//	})
//
// Shrink candidates that leave the case's query class (a qhorn-1
// hidden query must keep covering every variable, a verify case must
// keep both queries role-preserving) are discarded, so the result is
// a valid case of the same class.
func Minimize(c Case, fails func(Case) bool) Case {
	if !fails(c) {
		return c
	}
	for {
		shrunk := false
		for _, cand := range shrinks(c) {
			if !validCase(cand) {
				continue
			}
			if fails(cand) {
				c, shrunk = cand, true
				break
			}
		}
		if !shrunk {
			return c
		}
	}
}

// shrinks enumerates every single-step reduction of the case.
func shrinks(c Case) []Case {
	var out []Case
	n := c.Hidden.N()
	// Remove a universe variable from both queries at once.
	if n > 1 {
		for v := 0; v < n; v++ {
			cand := c
			cand.Hidden = dropUniverseVar(c.Hidden, v)
			if c.Class == ClassVerify {
				cand.Given = dropUniverseVar(c.Given, v)
			}
			out = append(out, cand)
		}
	}
	// Drop one expression of the hidden (then given) query.
	for i := range c.Hidden.Exprs {
		cand := c
		cand.Hidden = dropExprAt(c.Hidden, i)
		out = append(out, cand)
	}
	if c.Class == ClassVerify {
		for i := range c.Given.Exprs {
			cand := c
			cand.Given = dropExprAt(c.Given, i)
			out = append(out, cand)
		}
	}
	// Remove one variable from one body.
	out = append(out, bodyShrinks(c, false)...)
	if c.Class == ClassVerify {
		out = append(out, bodyShrinks(c, true)...)
	}
	return out
}

func bodyShrinks(c Case, given bool) []Case {
	q := c.Hidden
	if given {
		q = c.Given
	}
	var out []Case
	for i, e := range q.Exprs {
		for _, v := range e.Body.Vars() {
			exprs := copyExprs(q.Exprs)
			exprs[i] = query.Expr{Quant: e.Quant, Body: e.Body.Without(v), Head: e.Head}
			shrunken, ok := rebuild(q, exprs)
			if !ok {
				continue
			}
			cand := c
			if given {
				cand.Given = shrunken
			} else {
				cand.Hidden = shrunken
			}
			out = append(out, cand)
		}
	}
	return out
}

// dropExprAt removes the i-th expression.
func dropExprAt(q query.Query, i int) query.Query {
	exprs := append(copyExprs(q.Exprs[:i]), q.Exprs[i+1:]...)
	out, ok := rebuild(q, exprs)
	if !ok {
		return query.Query{U: q.U, Exprs: exprs}
	}
	return out
}

// dropUniverseVar removes variable v from the query: expressions
// headed by v are dropped, v is removed from every body, conjunctions
// emptied by the removal are dropped, and the remaining variables are
// renumbered down onto a universe of n-1 variables.
func dropUniverseVar(q query.Query, v int) query.Query {
	u := boolean.MustUniverse(q.N() - 1)
	var exprs []query.Expr
	for _, e := range q.Exprs {
		if e.Head == v {
			continue
		}
		body := remapDown(e.Body.Without(v), v)
		if e.Head == query.NoHead && body.IsEmpty() {
			continue
		}
		head := e.Head
		if head != query.NoHead && head > v {
			head--
		}
		exprs = append(exprs, query.Expr{Quant: e.Quant, Body: body, Head: head})
	}
	out, err := query.New(u, exprs...)
	if err != nil {
		// Leave an invalid marker; validCase filters it out.
		return query.Query{U: u, Exprs: exprs}
	}
	return out
}

// remapDown shifts every variable above v down by one.
func remapDown(t boolean.Tuple, v int) boolean.Tuple {
	var out boolean.Tuple
	for _, x := range t.Vars() {
		if x > v {
			x--
		}
		out = out.With(x)
	}
	return out
}

// validCase reports whether the case is well-formed and still inside
// its declared class.
func validCase(c Case) bool {
	if c.Hidden.N() < 1 || c.Hidden.Validate() != nil {
		return false
	}
	switch c.Class {
	case ClassQhorn1:
		return c.Hidden.IsQhorn1()
	case ClassVerify:
		return c.Given.Validate() == nil &&
			c.Hidden.IsRolePreserving() && c.Given.IsRolePreserving()
	default:
		return c.Hidden.IsRolePreserving()
	}
}
