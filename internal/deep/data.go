package deep

import (
	"fmt"
	"math/rand"

	"qhorn/internal/nested"
	"qhorn/internal/query"
)

// This file ties the multi-level Boolean model to concrete data: a
// depth-2 nested relation Shelf(Box(Chocolate(...))), abstracted
// through the same propositions as the flat model.

// Shelf is one element of a depth-2 nested relation: a named set of
// nested objects (boxes).
type Shelf struct {
	Name  string
	Boxes []nested.Object
}

// AbstractShelf lifts a shelf into the Boolean domain as a depth-2
// deep.Object: leaves are the Boolean abstractions of the chocolates.
func AbstractShelf(ps nested.Propositions, s Shelf) Object {
	boxes := make([]Object, 0, len(s.Boxes))
	for _, b := range s.Boxes {
		kids := make([]Object, 0, len(b.Tuples))
		for _, t := range b.Tuples {
			kids = append(kids, Leaf(ps.Abstract(t)))
		}
		boxes = append(boxes, Set(kids...))
	}
	return Set(boxes...)
}

// ExecuteShelves runs a depth-2 query over shelves and returns the
// answers.
func ExecuteShelves(q Query, ps nested.Propositions, shelves []Shelf) ([]Shelf, error) {
	if q.Depth != 2 {
		return nil, fmt.Errorf("deep: query depth %d, shelves are depth 2", q.Depth)
	}
	if q.U.N() != len(ps.Props) {
		return nil, fmt.Errorf("deep: query over %d variables, %d propositions", q.U.N(), len(ps.Props))
	}
	var out []Shelf
	for _, s := range shelves {
		if q.Eval(AbstractShelf(ps, s)) {
			out = append(out, s)
		}
	}
	return out, nil
}

// RandomShelves generates a depth-2 chocolate-store: numShelves
// shelves of up to maxBoxes random boxes each.
func RandomShelves(rng *rand.Rand, numShelves, maxBoxes, maxPerBox int) []Shelf {
	out := make([]Shelf, 0, numShelves)
	for i := 0; i < numShelves; i++ {
		n := 1 + rng.Intn(maxBoxes)
		d := nested.RandomChocolates(rng, n, maxPerBox)
		out = append(out, Shelf{
			Name:  fmt.Sprintf("shelf-%02d", i+1),
			Boxes: d.Objects,
		})
	}
	return out
}

// LiftFlat wraps a flat qhorn query as a depth-2 query by prefixing
// every expression with the outer quantifier. With ∀ this means
// "every box satisfies the flat query" (conjunction and ∀ commute);
// with ∃ each expression is witnessed independently — possibly by
// different boxes — which is the natural lift of qhorn's normal form
// (a conjunction of independently quantified expressions).
func LiftFlat(fq query.Query, outer query.Quantifier) Query {
	d1 := FromFlat(fq)
	out := Query{U: fq.U, Depth: 2}
	for _, e := range d1.Exprs {
		out.Exprs = append(out.Exprs, Expr{
			Prefix: []query.Quantifier{outer, e.Prefix[0]},
			Body:   e.Body,
			Head:   e.Head,
		})
	}
	return out
}
