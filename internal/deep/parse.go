package deep

import (
	"fmt"
	"strings"
	"unicode"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// Parse reads a depth-d query in the prefix notation String prints:
// a space-separated sequence of expressions, each a quantifier prefix
// followed by a parenthesized (Horn) expression:
//
//	∀∃(x1x2 → x3) ∃∀(x4)
//
// ASCII forms are accepted: 'A' for ∀, 'E' for ∃, "->" for →. Every
// prefix must have exactly depth quantifiers. "⊤" (or an empty
// string) parses as the empty query.
func Parse(u boolean.Universe, depth int, s string) (Query, error) {
	q := Query{U: u, Depth: depth}
	s = strings.TrimSpace(s)
	if s == "" || s == "⊤" {
		return q, nil
	}
	rs := []rune(s)
	i := 0
	skipSpace := func() {
		for i < len(rs) && unicode.IsSpace(rs[i]) {
			i++
		}
	}
	for skipSpace(); i < len(rs); skipSpace() {
		// Quantifier prefix.
		var prefix []query.Quantifier
		for i < len(rs) {
			switch rs[i] {
			case '∀', 'A':
				prefix = append(prefix, query.Forall)
				i++
				continue
			case '∃', 'E':
				prefix = append(prefix, query.Exists)
				i++
				continue
			}
			break
		}
		if len(prefix) == 0 {
			return Query{}, fmt.Errorf("deep: expected quantifier prefix at %q", string(rs[i:]))
		}
		if i >= len(rs) || rs[i] != '(' {
			return Query{}, fmt.Errorf("deep: expected '(' after prefix")
		}
		i++
		// Body variables.
		body, err := parseVars(rs, &i, u)
		if err != nil {
			return Query{}, err
		}
		head := query.NoHead
		skipInner(rs, &i)
		if i+1 < len(rs) && (rs[i] == '→' || (rs[i] == '-' && rs[i+1] == '>')) {
			if rs[i] == '→' {
				i++
			} else {
				i += 2
			}
			skipInner(rs, &i)
			h, err := parseVars(rs, &i, u)
			if err != nil {
				return Query{}, err
			}
			if h.Count() != 1 {
				return Query{}, fmt.Errorf("deep: head must be a single variable")
			}
			head = h.Lowest()
		}
		skipInner(rs, &i)
		if i >= len(rs) || rs[i] != ')' {
			return Query{}, fmt.Errorf("deep: expected ')' to close expression")
		}
		i++
		q.Exprs = append(q.Exprs, Expr{Prefix: prefix, Body: body, Head: head})
	}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustParse is Parse for fixtures; it panics on error.
func MustParse(u boolean.Universe, depth int, s string) Query {
	q, err := Parse(u, depth, s)
	if err != nil {
		panic(err)
	}
	return q
}

func skipInner(rs []rune, i *int) {
	for *i < len(rs) && unicode.IsSpace(rs[*i]) {
		*i++
	}
}

// parseVars reads one or more x<digits> variables.
func parseVars(rs []rune, i *int, u boolean.Universe) (boolean.Tuple, error) {
	var t boolean.Tuple
	count := 0
	for {
		skipInner(rs, i)
		if *i >= len(rs) || (rs[*i] != 'x' && rs[*i] != 'X') {
			break
		}
		*i++
		start := *i
		for *i < len(rs) && unicode.IsDigit(rs[*i]) {
			*i++
		}
		if *i == start {
			return 0, fmt.Errorf("deep: variable without index")
		}
		idx := 0
		for _, d := range rs[start:*i] {
			idx = idx*10 + int(d-'0')
		}
		if idx < 1 || idx > u.N() {
			return 0, fmt.Errorf("deep: variable x%d outside universe of %d variables", idx, u.N())
		}
		t = t.With(idx - 1)
		count++
	}
	if count == 0 {
		return 0, fmt.Errorf("deep: expected variables")
	}
	return t, nil
}
