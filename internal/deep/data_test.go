package deep

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/nested"
	"qhorn/internal/query"
)

func TestAbstractShelf(t *testing.T) {
	ps := nested.ChocolatePropositions()
	d := nested.Fig1Dataset()
	shelf := Shelf{Name: "window", Boxes: d.Objects}
	obj := AbstractShelf(ps, shelf)
	if obj.Depth() != 2 {
		t.Fatalf("depth = %d", obj.Depth())
	}
	if err := obj.Validate(ps.Universe(), 2); err != nil {
		t.Fatal(err)
	}
	if len(obj.Kids) != 2 || len(obj.Kids[0].Kids) != 3 {
		t.Fatalf("structure: %d boxes, %d chocolates", len(obj.Kids), len(obj.Kids[0].Kids))
	}
}

func TestExecuteShelves(t *testing.T) {
	ps := nested.ChocolatePropositions()
	u := ps.Universe()
	rng := rand.New(rand.NewSource(23))
	shelves := RandomShelves(rng, 40, 4, 4)
	if len(shelves) != 40 {
		t.Fatalf("shelves = %d", len(shelves))
	}
	// ∀box ∃chocolate dark: every box on the shelf has a dark one.
	q := Query{U: u, Depth: 2, Exprs: []Expr{{
		Prefix: []query.Quantifier{query.Forall, query.Exists},
		Body:   boolean.FromVars(0),
		Head:   query.NoHead,
	}}}
	matches, err := ExecuteShelves(q, ps, shelves)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against direct per-box evaluation.
	flatDark := query.MustParse(u, "∃x1")
	want := 0
	for _, s := range shelves {
		all := true
		for _, b := range s.Boxes {
			if !flatDark.Eval(ps.AbstractObject(b)) {
				all = false
				break
			}
		}
		if all {
			want++
		}
	}
	if len(matches) != want {
		t.Fatalf("matches = %d, direct = %d", len(matches), want)
	}
	// Depth / arity errors.
	if _, err := ExecuteShelves(Query{U: u, Depth: 1}, ps, shelves); err == nil {
		t.Error("depth-1 query accepted")
	}
	if _, err := ExecuteShelves(Query{U: boolean.MustUniverse(7), Depth: 2}, ps, shelves); err == nil {
		t.Error("mismatched universe accepted")
	}
}

func TestLiftFlat(t *testing.T) {
	ps := nested.ChocolatePropositions()
	u := ps.Universe()
	flat := query.MustParse(u, "∀x1 ∃x2x3")
	rng := rand.New(rand.NewSource(24))
	shelves := RandomShelves(rng, 60, 3, 4)

	// ∀-lift: every box satisfies the flat query.
	lifted := LiftFlat(flat, query.Forall)
	if lifted.Depth != 2 {
		t.Fatalf("depth = %d", lifted.Depth)
	}
	matches, err := ExecuteShelves(lifted, ps, shelves)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, s := range shelves {
		all := true
		for _, b := range s.Boxes {
			if !flat.Eval(ps.AbstractObject(b)) {
				all = false
				break
			}
		}
		if all {
			want++
		}
	}
	if len(matches) != want {
		t.Fatalf("∀-lift: %d matches, direct %d", len(matches), want)
	}

	// ∃-lift accepts at least every shelf where one box satisfies the
	// whole query (per-expression witnesses may differ).
	existsLift := LiftFlat(flat, query.Exists)
	matches, err = ExecuteShelves(existsLift, ps, shelves)
	if err != nil {
		t.Fatal(err)
	}
	atLeast := 0
	for _, s := range shelves {
		for _, b := range s.Boxes {
			if flat.Eval(ps.AbstractObject(b)) {
				atLeast++
				break
			}
		}
	}
	if len(matches) < atLeast {
		t.Fatalf("∃-lift: %d matches < %d single-box witnesses", len(matches), atLeast)
	}
}
