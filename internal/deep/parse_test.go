package deep

import (
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

func TestParseRoundTrip(t *testing.T) {
	u := boolean.MustUniverse(4)
	inputs := []string{
		"∀∃(x1x2 → x3) ∃∀(x4)",
		"∀∀(x1 → x2)",
		"∃∃(x1x2x3x4)",
		"⊤",
	}
	for _, in := range inputs {
		q := MustParse(u, 2, in)
		back := MustParse(u, 2, q.String())
		if q.String() != back.String() {
			t.Errorf("round trip %q -> %q -> %q", in, q.String(), back.String())
		}
	}
}

func TestParseASCII(t *testing.T) {
	u := boolean.MustUniverse(4)
	a := MustParse(u, 2, "AE(x1x2 -> x3) EA(x4)")
	b := MustParse(u, 2, "∀∃(x1x2 → x3) ∃∀(x4)")
	if a.String() != b.String() {
		t.Errorf("ASCII parse differs: %s vs %s", a, b)
	}
}

func TestParseMatchesConstructed(t *testing.T) {
	u := boolean.MustUniverse(4)
	q := MustParse(u, 2, "∀∃(x1x2 → x3)")
	want := Query{U: u, Depth: 2, Exprs: []Expr{{
		Prefix: []query.Quantifier{query.Forall, query.Exists},
		Body:   boolean.FromVars(0, 1),
		Head:   2,
	}}}
	if q.String() != want.String() {
		t.Errorf("parsed %s, want %s", q, want)
	}
	// Semantics agree on a few objects.
	dark := Leaf(u.MustParse("1110"))
	shelf := Set(Set(dark))
	if q.Eval(shelf) != want.Eval(shelf) {
		t.Error("parsed query evaluates differently")
	}
}

func TestParseErrors(t *testing.T) {
	u := boolean.MustUniverse(3)
	for _, bad := range []string{
		"(x1)",         // no prefix
		"∀x1",          // missing parens
		"∀()",          // no variables
		"∀(x9)",        // out of range
		"∀(x1 → x1)",   // head in body
		"∀(x1 → x2x3)", // multi-variable head
		"∀∃(x1)",       // prefix deeper than query depth 1
		"∀(x1",         // unclosed
		"∀(x1 -",       // dangling arrow
		"∀(x)",         // no index
	} {
		if _, err := Parse(u, 1, bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParseDepthMismatch(t *testing.T) {
	u := boolean.MustUniverse(2)
	if _, err := Parse(u, 2, "∀(x1)"); err == nil {
		t.Error("short prefix accepted")
	}
	if _, err := Parse(u, 1, "∀(x1)"); err != nil {
		t.Error(err)
	}
}
