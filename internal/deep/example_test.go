package deep_test

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/deep"
)

func ExampleQuery_Eval() {
	// Shelf(Box(Chocolate)): every box has a dark chocolate, and some
	// box is entirely filled chocolates.
	u := boolean.MustUniverse(2) // x1 isDark, x2 hasFilling
	q := deep.MustParse(u, 2, "∀∃(x1) ∃∀(x2)")

	dark := deep.Leaf(u.MustParse("10"))
	filled := deep.Leaf(u.MustParse("01"))
	both := deep.Leaf(u.MustParse("11"))

	good := deep.Set(deep.Set(dark, filled), deep.Set(both))
	bad := deep.Set(deep.Set(filled), deep.Set(both))
	fmt.Println("good shelf:", q.Eval(good))
	fmt.Println("bad shelf: ", q.Eval(bad))
	// Output:
	// good shelf: true
	// bad shelf:  false
}

func ExampleParse() {
	u := boolean.MustUniverse(3)
	q := deep.MustParse(u, 2, "AA(x1 -> x2) EE(x3)")
	fmt.Println(q)
	fmt.Println("depth:", q.Depth)
	// Output:
	// ∀∀(x1 → x2) ∃∃(x3)
	// depth: 2
}
