package deep

import (
	"math/rand"
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

func TestObjectBasics(t *testing.T) {
	u := boolean.MustUniverse(2)
	leaf := Leaf(u.MustParse("10"))
	if !leaf.IsLeaf() || leaf.Depth() != 0 {
		t.Fatal("leaf misclassified")
	}
	box := Set(leaf, Leaf(u.MustParse("01")))
	if box.IsLeaf() || box.Depth() != 1 {
		t.Fatal("box misclassified")
	}
	shelf := Set(box, Set())
	if shelf.Depth() != 2 {
		t.Fatalf("shelf depth = %d", shelf.Depth())
	}
	if err := shelf.Validate(u, 2); err != nil {
		t.Fatal(err)
	}
	if err := shelf.Validate(u, 1); err == nil {
		t.Fatal("wrong depth accepted")
	}
	if err := Leaf(boolean.FromVars(5)).Validate(u, 0); err == nil {
		t.Fatal("out-of-universe leaf accepted")
	}
	if got := shelf.Format(u); !strings.Contains(got, "{{10, 01}, {}}") && !strings.Contains(got, "{10, 01}") {
		t.Logf("format: %s", got)
	}
}

func TestObjectKeyCanonical(t *testing.T) {
	u := boolean.MustUniverse(2)
	a := Set(Leaf(u.MustParse("10")), Leaf(u.MustParse("01")))
	b := Set(Leaf(u.MustParse("01")), Leaf(u.MustParse("10")))
	if a.Key() != b.Key() {
		t.Fatalf("set order changed key: %s vs %s", a.Key(), b.Key())
	}
	c := Set(Leaf(u.MustParse("11")))
	if a.Key() == c.Key() {
		t.Fatal("distinct objects share key")
	}
}

// TestDepth1MatchesFlatModel: lifting a flat qhorn query to depth 1
// preserves its semantics on every object, for all role-preserving
// queries on 2 variables.
func TestDepth1MatchesFlatModel(t *testing.T) {
	u := boolean.MustUniverse(2)
	for _, fq := range query.AllQueries(u) {
		dq := FromFlat(fq)
		if err := dq.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, s := range boolean.AllObjects(u) {
			if got, want := dq.Eval(FromFlatObject(s)), fq.Eval(s); got != want {
				t.Fatalf("query %s on %s: deep %v, flat %v", fq, s.Format(u), got, want)
			}
		}
	}
}

func TestEvalDepth2Semantics(t *testing.T) {
	u := boolean.MustUniverse(2)
	// ∀box ∃c (x1): every box on the shelf has a dark chocolate.
	q := Query{U: u, Depth: 2, Exprs: []Expr{{
		Prefix: []query.Quantifier{query.Forall, query.Exists},
		Body:   boolean.FromVars(0),
		Head:   query.NoHead,
	}}}
	dark := Leaf(u.MustParse("10"))
	milk := Leaf(u.MustParse("01"))
	goodShelf := Set(Set(dark), Set(dark, milk))
	badShelf := Set(Set(dark), Set(milk))
	if !q.Eval(goodShelf) {
		t.Error("good shelf rejected")
	}
	if q.Eval(badShelf) {
		t.Error("shelf with an all-milk box accepted")
	}
	// The empty shelf satisfies the ∀ constraint vacuously — the
	// conjunction has no guarantee requirement here because it is not
	// a Horn rule; it has an ∃ inside, which the empty box fails.
	if q.Eval(Set(Set())) {
		t.Error("shelf with an empty box accepted")
	}
	// ∃box ∀c (x1): some box is all-dark. Needs a guarantee? It is a
	// conjunction prefix, evaluated directly.
	q2 := Query{U: u, Depth: 2, Exprs: []Expr{{
		Prefix: []query.Quantifier{query.Exists, query.Forall},
		Body:   boolean.FromVars(0),
		Head:   query.NoHead,
	}}}
	if !q2.Eval(goodShelf) {
		t.Error("shelf with an all-dark box rejected")
	}
	if !q2.Eval(Set(Set(), Set(milk))) {
		// ∃box ∀c: the empty box satisfies ∀c vacuously — documented
		// behaviour for conjunction prefixes without Horn guarantees.
		t.Error("vacuous ∀ inside ∃ changed")
	}
}

func TestEvalHornGuaranteeAtDepth2(t *testing.T) {
	u := boolean.MustUniverse(2)
	// ∀∀(x1 → x2) with the generalized guarantee: some chain must
	// witness x1 ∧ x2.
	q := Query{U: u, Depth: 2, Exprs: []Expr{{
		Prefix: []query.Quantifier{query.Forall, query.Forall},
		Body:   boolean.FromVars(0),
		Head:   1,
	}}}
	both := Leaf(u.MustParse("11"))
	neither := Leaf(u.MustParse("00"))
	violating := Leaf(u.MustParse("10"))
	if !q.Eval(Set(Set(both), Set(neither))) {
		t.Error("consistent shelf rejected")
	}
	if q.Eval(Set(Set(violating))) {
		t.Error("violating chocolate accepted")
	}
	// Vacuous satisfaction without a witness is rejected by the
	// guarantee clause, as in the flat model.
	if q.Eval(Set(Set(neither))) {
		t.Error("guarantee clause not enforced at depth 2")
	}
}

func TestAllObjectsCounts(t *testing.T) {
	u1 := boolean.MustUniverse(1)
	if got := len(AllObjects(u1, 0)); got != 2 {
		t.Fatalf("depth 0: %d", got)
	}
	if got := len(AllObjects(u1, 1)); got != 4 {
		t.Fatalf("depth 1: %d", got)
	}
	if got := len(AllObjects(u1, 2)); got != 16 {
		t.Fatalf("depth 2: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("explosive enumeration did not panic")
		}
	}()
	AllObjects(boolean.MustUniverse(3), 2)
}

func TestAllQueriesDistinct(t *testing.T) {
	u := boolean.MustUniverse(1)
	for depth := 1; depth <= 2; depth++ {
		queries := AllQueries(u, depth)
		objects := AllObjects(u, depth)
		sigs := map[string]bool{}
		for _, q := range queries {
			sig := evalSignature(q, objects)
			if sigs[sig] {
				t.Fatalf("depth %d: duplicate semantics for %s", depth, q)
			}
			sigs[sig] = true
		}
		t.Logf("depth %d: %d semantically distinct queries", depth, len(queries))
		if depth == 2 && len(queries) <= len(AllQueries(u, 1)) {
			t.Error("depth-2 class not larger than depth-1")
		}
	}
}

func TestEliminationLearnIdentifiesEveryTarget(t *testing.T) {
	u := boolean.MustUniverse(1)
	for depth := 1; depth <= 2; depth++ {
		class := AllQueries(u, depth)
		pool := AllObjects(u, depth)
		for _, target := range class {
			learned, questions := EliminationLearn(class, target, pool)
			if evalSignature(learned, pool) != evalSignature(target, pool) {
				t.Fatalf("depth %d: target %s learned as %s", depth, target, learned)
			}
			if questions == 0 && len(class) > 1 && evalSignature(target, pool) != evalSignature(class[0], pool) {
				// At least the distinguishing questions were needed.
				t.Logf("target %s identified without questions", target)
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	u := boolean.MustUniverse(2)
	bad := []Query{
		{U: u, Depth: 2, Exprs: []Expr{{Prefix: []query.Quantifier{query.Forall}, Body: 1, Head: query.NoHead}}},
		{U: u, Depth: 1, Exprs: []Expr{{Prefix: []query.Quantifier{query.Forall}, Body: boolean.FromVars(3), Head: query.NoHead}}},
		{U: u, Depth: 1, Exprs: []Expr{{Prefix: []query.Quantifier{query.Forall}, Body: boolean.FromVars(0), Head: 0}}},
		{U: u, Depth: 1, Exprs: []Expr{{Prefix: []query.Quantifier{query.Exists}, Head: query.NoHead}}},
		{U: u, Depth: 1, Exprs: []Expr{{Prefix: []query.Quantifier{query.Exists}, Head: 7}}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestExprString(t *testing.T) {
	e := Expr{Prefix: []query.Quantifier{query.Forall, query.Exists}, Body: boolean.FromVars(0, 1), Head: 2}
	if got := e.String(); got != "∀∃(x1x2 → x3)" {
		t.Errorf("String = %q", got)
	}
	c := Expr{Prefix: []query.Quantifier{query.Exists}, Body: boolean.FromVars(0), Head: query.NoHead}
	if got := c.String(); got != "∃(x1)" {
		t.Errorf("String = %q", got)
	}
	if got := (Query{}).String(); got != "⊤" {
		t.Errorf("empty query = %q", got)
	}
}

func TestRandomDepthConsistency(t *testing.T) {
	// Depth-1 lifting agrees with flat semantics on random larger
	// universes too.
	rng := rand.New(rand.NewSource(111))
	for i := 0; i < 50; i++ {
		n := 3 + rng.Intn(4)
		u := boolean.MustUniverse(n)
		fq := query.GenRolePreserving(rng, n, query.RPOptions{
			Heads: 1, BodiesPerHead: 1, MaxBodySize: 2, Conjs: 2, MaxConjSize: 3,
		})
		dq := FromFlat(fq)
		for j := 0; j < 20; j++ {
			m := rng.Intn(4)
			tuples := make([]boolean.Tuple, m)
			for k := range tuples {
				tuples[k] = boolean.Tuple(rng.Int63()) & u.All()
			}
			s := boolean.NewSet(tuples...)
			if dq.Eval(FromFlatObject(s)) != fq.Eval(s) {
				t.Fatalf("depth-1 mismatch on %s for %s", s.Format(u), fq)
			}
		}
	}
}
