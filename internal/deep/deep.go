// Package deep implements the multi-level-nesting direction that §6
// of the qhorn paper leaves as future work: data with several levels
// of nesting, and queries whose expressions carry one quantifier per
// level — "in such queries, a single expression can have several
// quantifiers".
//
// A depth-d object is a set of depth-(d−1) objects; depth-0 objects
// are Boolean tuples over the propositions, exactly as in the flat
// model. A depth-d expression is a quantifier prefix Q1…Qd applied to
// a (Horn) expression over the Boolean variables, e.g. over
// Shelf(Box(Chocolate)):
//
//	∀ box ∈ shelf ∃ c ∈ box (isDark ∧ hasFilling)
//
// Guarantee clauses generalize the paper's §2.1 convention: every
// expression additionally requires a fully-existential witness — some
// chain of nested elements whose leaf tuple satisfies body ∧ head —
// so degenerate empty sets at any level never satisfy a query
// vacuously.
//
// Depth-1 queries coincide exactly with the flat qhorn model
// (FromFlat/tests), and the package provides the exhaustive
// enumeration and elimination learner used by experiment E17 to
// measure how the query space and the question complexity blow up
// with depth — quantifying why the paper stops at single-level
// nesting.
package deep

import (
	"fmt"
	"strings"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// Object is a node of a depth-d nested object. Leaves carry a Boolean
// tuple; internal nodes carry a set of children. Depth is uniform: in
// a depth-d object every leaf sits below exactly d set levels.
type Object struct {
	// Tuple is the leaf payload (valid when Kids is nil and the node
	// is a leaf).
	Tuple boolean.Tuple
	// Kids are the child objects of an internal node.
	Kids []Object
	// leaf distinguishes an empty internal node from a leaf.
	leaf bool
}

// Leaf returns a depth-0 object.
func Leaf(t boolean.Tuple) Object { return Object{Tuple: t, leaf: true} }

// Set returns an internal node over the given children (possibly
// none: the empty set).
func Set(kids ...Object) Object { return Object{Kids: kids} }

// IsLeaf reports whether the object is a depth-0 tuple.
func (o Object) IsLeaf() bool { return o.leaf }

// Depth returns the nesting depth: 0 for a leaf, otherwise 1 plus the
// depth of its children (0-child internal nodes report 1).
func (o Object) Depth() int {
	if o.leaf {
		return 0
	}
	if len(o.Kids) == 0 {
		return 1
	}
	return 1 + o.Kids[0].Depth()
}

// Validate checks uniform depth d with leaves inside universe u.
func (o Object) Validate(u boolean.Universe, d int) error {
	if d == 0 {
		if !o.leaf {
			return fmt.Errorf("deep: internal node at leaf depth")
		}
		if !u.Contains(o.Tuple) {
			return fmt.Errorf("deep: leaf tuple outside universe")
		}
		return nil
	}
	if o.leaf {
		return fmt.Errorf("deep: leaf at depth %d", d)
	}
	for _, k := range o.Kids {
		if err := k.Validate(u, d-1); err != nil {
			return err
		}
	}
	return nil
}

// Format renders the object with nested braces, leaves in the paper's
// 0/1 notation.
func (o Object) Format(u boolean.Universe) string {
	if o.leaf {
		return u.Format(o.Tuple)
	}
	parts := make([]string, len(o.Kids))
	for i, k := range o.Kids {
		parts[i] = k.Format(u)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Key returns a canonical string for memoization and set semantics.
func (o Object) Key() string {
	if o.leaf {
		return fmt.Sprintf("%x", uint64(o.Tuple))
	}
	parts := make([]string, len(o.Kids))
	for i, k := range o.Kids {
		parts[i] = k.Key()
	}
	// Children are a set: canonicalize by sorting keys.
	sortStrings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Expr is a depth-d quantified (Horn) expression: the quantifier
// prefix applies outermost-first, one per nesting level.
type Expr struct {
	Prefix []query.Quantifier
	Body   boolean.Tuple
	Head   int // query.NoHead for a conjunction
}

// Vars returns body plus head.
func (e Expr) Vars() boolean.Tuple {
	if e.Head == query.NoHead {
		return e.Body
	}
	return e.Body.With(e.Head)
}

// String renders the expression, e.g. "∀∃(x1x2 → x3)".
func (e Expr) String() string {
	var b strings.Builder
	for _, q := range e.Prefix {
		b.WriteString(q.String())
	}
	b.WriteByte('(')
	for _, v := range e.Body.Vars() {
		fmt.Fprintf(&b, "x%d", v+1)
	}
	if e.Head != query.NoHead {
		if !e.Body.IsEmpty() {
			b.WriteString(" → ")
		}
		fmt.Fprintf(&b, "x%d", e.Head+1)
	}
	b.WriteByte(')')
	return b.String()
}

// Query is a conjunction of depth-d expressions.
type Query struct {
	U     boolean.Universe
	Depth int
	Exprs []Expr
}

// Validate checks prefix lengths and variable ranges.
func (q Query) Validate() error {
	for _, e := range q.Exprs {
		if len(e.Prefix) != q.Depth {
			return fmt.Errorf("deep: expression %s has prefix length %d, query depth %d", e, len(e.Prefix), q.Depth)
		}
		if !q.U.Contains(e.Body) {
			return fmt.Errorf("deep: body outside universe")
		}
		if e.Head != query.NoHead {
			if e.Head < 0 || e.Head >= q.U.N() {
				return fmt.Errorf("deep: head x%d outside universe", e.Head+1)
			}
			if e.Body.Has(e.Head) {
				return fmt.Errorf("deep: head x%d in its own body", e.Head+1)
			}
		} else if e.Body.IsEmpty() {
			return fmt.Errorf("deep: empty conjunction")
		}
	}
	return nil
}

// String renders the query; the empty query prints as ⊤.
func (q Query) String() string {
	if len(q.Exprs) == 0 {
		return "⊤"
	}
	parts := make([]string, len(q.Exprs))
	for i, e := range q.Exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Eval reports whether the object (of the query's depth) is an
// answer: every expression's quantified constraint holds AND its
// fully-existential guarantee witness exists.
func (q Query) Eval(o Object) bool {
	for _, e := range q.Exprs {
		if !evalPrefix(e.Prefix, e, o) {
			return false
		}
		if e.Head != query.NoHead && hasForall(e.Prefix) {
			// Guarantee clause: some chain of elements reaches a leaf
			// containing body ∪ head.
			if !existsWitness(o, len(e.Prefix), e.Vars()) {
				return false
			}
		}
	}
	return true
}

func hasForall(prefix []query.Quantifier) bool {
	for _, p := range prefix {
		if p == query.Forall {
			return true
		}
	}
	return false
}

// evalPrefix evaluates the quantified constraint recursively.
func evalPrefix(prefix []query.Quantifier, e Expr, o Object) bool {
	if len(prefix) == 0 {
		t := o.Tuple
		if e.Head == query.NoHead {
			return t.Contains(e.Body)
		}
		return !t.Contains(e.Body) || t.Has(e.Head)
	}
	switch prefix[0] {
	case query.Forall:
		for _, k := range o.Kids {
			if !evalPrefix(prefix[1:], e, k) {
				return false
			}
		}
		return true
	default: // Exists
		for _, k := range o.Kids {
			if evalPrefix(prefix[1:], e, k) {
				return true
			}
		}
		return false
	}
}

// existsWitness reports whether some depth-levels chain reaches a
// leaf containing vars.
func existsWitness(o Object, levels int, vars boolean.Tuple) bool {
	if levels == 0 {
		return o.Tuple.Contains(vars)
	}
	for _, k := range o.Kids {
		if existsWitness(k, levels-1, vars) {
			return true
		}
	}
	return false
}

// FromFlat lifts a single-level qhorn query to an equivalent depth-1
// deep query: universal Horn expressions keep their ∀ prefix,
// existential expressions become ∃ conjunctions over body ∪ head.
func FromFlat(fq query.Query) Query {
	out := Query{U: fq.U, Depth: 1}
	for _, e := range fq.Exprs {
		switch e.Quant {
		case query.Forall:
			out.Exprs = append(out.Exprs, Expr{
				Prefix: []query.Quantifier{query.Forall},
				Body:   e.Body,
				Head:   e.Head,
			})
		default:
			out.Exprs = append(out.Exprs, Expr{
				Prefix: []query.Quantifier{query.Exists},
				Body:   e.Vars(),
				Head:   query.NoHead,
			})
		}
	}
	return out
}

// FromFlatObject lifts a Boolean tuple-set to a depth-1 object.
func FromFlatObject(s boolean.Set) Object {
	kids := make([]Object, 0, s.Size())
	for _, t := range s.Tuples() {
		kids = append(kids, Leaf(t))
	}
	return Set(kids...)
}

// AllObjects enumerates every depth-d object over the universe up to
// set semantics. Sizes are towers of exponentials: it panics unless
// the total stays tiny (n·2^n… ≤ 1<<16 at every level).
func AllObjects(u boolean.Universe, depth int) []Object {
	level := make([]Object, 0, 1<<uint(u.N()))
	for _, t := range boolean.AllTuples(u) {
		level = append(level, Leaf(t))
	}
	for d := 0; d < depth; d++ {
		if len(level) > 16 {
			panic("deep: AllObjects blows up past 2^16 at the next level")
		}
		next := make([]Object, 0, 1<<uint(len(level)))
		for mask := 0; mask < 1<<uint(len(level)); mask++ {
			var kids []Object
			for i := 0; i < len(level); i++ {
				if mask&(1<<uint(i)) != 0 {
					kids = append(kids, level[i])
				}
			}
			next = append(next, Set(kids...))
		}
		level = next
	}
	return level
}

// AllQueries enumerates every semantically distinct depth-d query
// whose expressions are single conjunctions or Horn rules over the
// universe, deduplicated by exhaustive evaluation. Exponential;
// intended for the E17 measurement at n ≤ 2, depth ≤ 2.
func AllQueries(u boolean.Universe, depth int) []Query {
	exprs := allExprs(u, depth)
	objects := AllObjects(u, depth)
	var out []Query
	seen := map[string]bool{}
	// All subsets of candidate expressions, capped to pairs to keep
	// the enumeration meaningful yet finite.
	var cands []Query
	cands = append(cands, Query{U: u, Depth: depth}) // ⊤
	for i := range exprs {
		cands = append(cands, Query{U: u, Depth: depth, Exprs: []Expr{exprs[i]}})
		for j := i + 1; j < len(exprs); j++ {
			cands = append(cands, Query{U: u, Depth: depth, Exprs: []Expr{exprs[i], exprs[j]}})
		}
	}
	for _, q := range cands {
		sig := evalSignature(q, objects)
		if !seen[sig] {
			seen[sig] = true
			out = append(out, q)
		}
	}
	return out
}

// allExprs enumerates the single expressions: every quantifier
// prefix × every conjunction and Horn rule.
func allExprs(u boolean.Universe, depth int) []Expr {
	prefixes := allPrefixes(depth)
	var out []Expr
	for _, p := range prefixes {
		for m := boolean.Tuple(1); m <= u.All(); m++ {
			out = append(out, Expr{Prefix: p, Body: m, Head: query.NoHead})
		}
		for h := 0; h < u.N(); h++ {
			for _, m := range submasksOf(u.All().Without(h)) {
				out = append(out, Expr{Prefix: p, Body: m, Head: h})
			}
		}
	}
	return out
}

func allPrefixes(depth int) [][]query.Quantifier {
	if depth == 0 {
		return [][]query.Quantifier{{}}
	}
	var out [][]query.Quantifier
	for _, rest := range allPrefixes(depth - 1) {
		for _, q := range []query.Quantifier{query.Forall, query.Exists} {
			out = append(out, append([]query.Quantifier{q}, rest...))
		}
	}
	return out
}

func submasksOf(m boolean.Tuple) []boolean.Tuple {
	var out []boolean.Tuple
	s := boolean.Tuple(0)
	for {
		out = append(out, s)
		if s == m {
			return out
		}
		s = (s - m) & m
	}
}

// evalSignature fingerprints a query by its classification of every
// object.
func evalSignature(q Query, objects []Object) string {
	b := make([]byte, len(objects))
	for i, o := range objects {
		if q.Eval(o) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// EliminationLearn identifies a target query from the class by asking
// membership questions from the object pool, eliminating inconsistent
// candidates exactly like internal/brute does for flat queries. It
// returns the number of questions asked and the surviving query.
func EliminationLearn(class []Query, target Query, pool []Object) (Query, int) {
	remaining := append([]Query{}, class...)
	questions := 0
	for _, obj := range pool {
		if len(remaining) <= 1 {
			break
		}
		var yes, no int
		for _, q := range remaining {
			if q.Eval(obj) {
				yes++
			} else {
				no++
			}
		}
		if yes == 0 || no == 0 {
			continue
		}
		questions++
		answer := target.Eval(obj)
		next := remaining[:0]
		for _, q := range remaining {
			if q.Eval(obj) == answer {
				next = append(next, q)
			}
		}
		remaining = next
	}
	return remaining[0], questions
}
