package verify_test

import (
	"math/rand"
	"testing"

	"qhorn/internal/difffuzz"
)

// TestDifferentialVerifySoundness drives the verifier through the
// differential engine: for seeded pairs of (hidden, adversarial
// mutant) queries, the verdict of the mutant's verification set run
// against the hidden oracle must match ground-truth equivalence
// (Theorem 4.2). The engine's generator supplies the mutants — flip
// roles, dropped guarantee-clause witnesses, permutations — that
// hand-written verify tests do not reach.
func TestDifferentialVerifySoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	checked := 0
	for i := 0; i < 120; i++ {
		c := difffuzz.GenCase(rng, difffuzz.ClassVerify, 2, 7)
		res := difffuzz.CheckCase(c, difffuzz.Options{})
		checked++
		for _, d := range res.Disagreements {
			t.Errorf("%s", d)
		}
	}
	if checked == 0 {
		t.Fatal("no verify cases generated")
	}
}
