package verify

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

var u6 = boolean.MustUniverse(6)

func paperQuery() query.Query {
	return query.MustParse(u6, "∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
}

func questionsOf(t *testing.T, vs Set, kind Kind) []Question {
	t.Helper()
	var out []Question
	for _, q := range vs.Questions {
		if q.Kind == kind {
			out = append(out, q)
		}
	}
	return out
}

// checkSets asserts that the questions' tuple sets are exactly the
// given ones (unordered).
func checkSets(t *testing.T, kind string, qs []Question, want []string) {
	t.Helper()
	if len(qs) != len(want) {
		t.Fatalf("%s count = %d, want %d", kind, len(qs), len(want))
	}
	remaining := make([]boolean.Set, len(want))
	for i, w := range want {
		remaining[i] = boolean.MustParseSet(u6, w)
	}
	for _, q := range qs {
		matched := false
		for i, w := range remaining {
			if q.Set.Equal(w) {
				remaining = append(remaining[:i], remaining[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected %s question %s (%s)", kind, q.Set.Format(u6), q.About)
		}
	}
}

func mustBuild(t *testing.T, q query.Query) Set {
	t.Helper()
	vs, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

// TestWorkedExample pins the verification set of §4.2 for the
// paper's six-variable query.
func TestWorkedExample(t *testing.T) {
	vs := mustBuild(t, paperQuery())

	// A1: exactly the five dominant distinguishing tuples.
	a1 := questionsOf(t, vs, A1)
	if len(a1) != 1 {
		t.Fatalf("A1 count = %d", len(a1))
	}
	wantA1 := boolean.MustParseSet(u6, "{111001, 011110, 110011, 011011, 100110}")
	if !a1[0].Set.Equal(wantA1) {
		t.Errorf("A1 = %s, want %s", a1[0].Set.Format(u6), wantA1.Format(u6))
	}
	if !a1[0].Expect {
		t.Error("A1 must expect answer")
	}

	// N1: four questions (100110 is a guarantee clause), each pinned
	// to the paper's table.
	n1 := questionsOf(t, vs, N1)
	if len(n1) != 4 {
		t.Fatalf("N1 count = %d, want 4", len(n1))
	}
	wantN1 := map[string]string{
		// ∃x1x2x3(x6), t = 111001
		"111001": "{110001, 101001, 011001, 011110, 110011, 011011, 100110}",
		// ∃x2x3x4(x5), t = 011110
		"011110": "{111001, 011010, 010110, 001110, 110011, 011011, 100110}",
		// ∃x1x2x5(x6), t = 110011
		"110011": "{111001, 011110, 110001, 100011, 010011, 011011, 100110}",
		// ∃x2x3x5x6, t = 011011
		"011011": "{111001, 011110, 110011, 011010, 011001, 010011, 001011, 100110}",
	}
	for _, q := range n1 {
		if q.Expect {
			t.Errorf("N1 %s must expect non-answer", q.About)
		}
		matched := false
		for tuple, want := range wantN1 {
			wantSet := boolean.MustParseSet(u6, want)
			if q.Set.Equal(wantSet) {
				matched = true
				delete(wantN1, tuple)
				break
			}
		}
		if !matched {
			t.Errorf("unexpected N1 question %s (%s)", q.Set.Format(u6), q.About)
		}
	}
	if len(wantN1) != 0 {
		t.Errorf("missing N1 questions: %v", wantN1)
	}

	// A2: three questions.
	a2 := questionsOf(t, vs, A2)
	checkSets(t, "A2", a2, []string{
		"{111111, 100001, 000101}", // ∀x1x4→x5
		"{111111, 001001, 000101}", // ∀x3x4→x5
		"{111111, 100010, 010010}", // ∀x1x2→x6
	})

	// N2: three questions.
	n2 := questionsOf(t, vs, N2)
	checkSets(t, "N2", n2, []string{
		"{111111, 100101}",
		"{111111, 001101}",
		"{111111, 110010}",
	})

	// A3: includes the paper's worked question for ∃x2x3x4x5 / x5.
	a3 := questionsOf(t, vs, A3)
	want := boolean.MustParseSet(u6, "{111111, 010101, 111001}")
	found := false
	for _, q := range a3 {
		if q.Set.Equal(want) {
			found = true
		}
		if !q.Expect {
			t.Errorf("A3 must expect answer")
		}
	}
	if !found {
		t.Errorf("paper's A3 question missing; got %d A3 questions", len(a3))
		for _, q := range a3 {
			t.Logf("  A3 %s: %s", q.About, q.Set.Format(u6))
		}
	}

	// A4: the four non-head variables.
	a4 := questionsOf(t, vs, A4)
	if len(a4) != 1 {
		t.Fatalf("A4 count = %d", len(a4))
	}
	wantA4 := boolean.MustParseSet(u6, "{111111, 011111, 101111, 110111, 111011}")
	if !a4[0].Set.Equal(wantA4) {
		t.Errorf("A4 = %s, want %s", a4[0].Set.Format(u6), wantA4.Format(u6))
	}
}

func TestBuildRejectsNonRolePreserving(t *testing.T) {
	q := query.MustParse(u6, "∀x1x4 → x5 ∀x2x3x5 → x6")
	if _, err := Build(q); err == nil {
		t.Fatal("non-role-preserving query accepted")
	}
}

// TestSelfConsistency: the given query classifies every question of
// its own verification set as expected, for every role-preserving
// query on 2 and 3 variables plus random larger ones.
func TestSelfConsistency(t *testing.T) {
	for _, n := range []int{2, 3} {
		u := boolean.MustUniverse(n)
		for _, q := range query.AllQueries(u) {
			vs := mustBuild(t, q)
			if !vs.SelfConsistent() {
				for _, question := range vs.Questions {
					if vs.Query.Eval(question.Set) != question.Expect {
						t.Errorf("query %s: %s question %s expected %v",
							q, question.Kind, question.Set.Format(u), question.Expect)
					}
				}
				t.Fatalf("verification set of %s not self-consistent", q)
			}
		}
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		n := 4 + rng.Intn(10)
		q := query.GenRolePreserving(rng, n, query.RPOptions{
			Heads:         rng.Intn(n / 2),
			BodiesPerHead: 1 + rng.Intn(3),
			MaxBodySize:   1 + rng.Intn(3),
			Conjs:         rng.Intn(4),
			MaxConjSize:   1 + rng.Intn(n),
		})
		vs := mustBuild(t, q)
		if !vs.SelfConsistent() {
			t.Fatalf("verification set of %s not self-consistent", q)
		}
	}
}

// TestCompletenessTwoVars is Theorem 4.2 verified exhaustively: for
// every ordered pair (intended, given) of role-preserving queries on
// two variables, verification succeeds iff the queries are
// semantically equivalent. This regenerates the content of Fig 8.
func TestCompletenessTwoVars(t *testing.T) {
	u := boolean.MustUniverse(2)
	queries := query.AllQueries(u)
	for _, given := range queries {
		vs := mustBuild(t, given)
		for _, intended := range queries {
			res := vs.Run(oracle.Target(intended))
			want := given.Equivalent(intended)
			if res.Correct != want {
				t.Errorf("given %s, intended %s: verification correct=%v, equivalent=%v",
					given, intended, res.Correct, want)
			}
		}
	}
}

// TestCompletenessThreeVars extends the exhaustive Theorem 4.2 check
// to three variables.
func TestCompletenessThreeVars(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive pair check on 3 variables")
	}
	u := boolean.MustUniverse(3)
	queries := query.AllQueries(u)
	t.Logf("checking %d × %d pairs", len(queries), len(queries))
	for _, given := range queries {
		vs := mustBuild(t, given)
		for _, intended := range queries {
			res := vs.Run(oracle.Target(intended))
			want := given.Equivalent(intended)
			if res.Correct != want {
				t.Fatalf("given %s, intended %s: verification correct=%v, equivalent=%v",
					given, intended, res.Correct, want)
			}
		}
	}
}

// TestCompletenessRandomPairs samples larger universes.
func TestCompletenessRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	gen := func(n int) query.Query {
		return query.GenRolePreserving(rng, n, query.RPOptions{
			Heads:         rng.Intn(n / 2),
			BodiesPerHead: 1 + rng.Intn(2),
			MaxBodySize:   1 + rng.Intn(3),
			Conjs:         rng.Intn(3),
			MaxConjSize:   1 + rng.Intn(n),
		})
	}
	for i := 0; i < 200; i++ {
		n := 4 + rng.Intn(6)
		given, intended := gen(n), gen(n)
		res, err := Verify(given, oracle.Target(intended))
		if err != nil {
			t.Fatal(err)
		}
		want := given.Equivalent(intended)
		if res.Correct != want {
			t.Fatalf("given %s, intended %s: verification correct=%v, equivalent=%v",
				given, intended, res.Correct, want)
		}
	}
}

// TestVerificationSetSizeLinearInK: Fig 6 question counts — one A1,
// one A4, one A2+N2 per dominant universal, one N1 per non-guarantee
// conjunction.
func TestVerificationSetSizeLinearInK(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 50; i++ {
		n := 6 + rng.Intn(10)
		q := query.GenRolePreserving(rng, n, query.RPOptions{
			Heads:         1 + rng.Intn(3),
			BodiesPerHead: 1 + rng.Intn(2),
			MaxBodySize:   2,
			Conjs:         1 + rng.Intn(4),
			MaxConjSize:   4,
		})
		vs := mustBuild(t, q)
		nf := vs.Query
		k := nf.Size()
		// Generous linear envelope: A1 + A4 + (A2+N2 per universal) +
		// N1 per conjunction + A3 per (conjunction, head).
		bound := 2 + 3*k + k*k
		if len(vs.Questions) > bound {
			t.Errorf("%d questions for k=%d (bound %d): %s", len(vs.Questions), k, bound, nf)
		}
	}
}

// TestVerifyReportsDisagreementDetails checks the diagnostics.
func TestVerifyReportsDisagreementDetails(t *testing.T) {
	u := boolean.MustUniverse(2)
	given := query.MustParse(u, "∀x1 → x2")
	intended := query.MustParse(u, "∃x1x2")
	res, err := Verify(given, oracle.Target(intended))
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct {
		t.Fatal("semantically different queries verified as correct")
	}
	if len(res.Disagreements) == 0 {
		t.Fatal("no disagreements recorded")
	}
	for _, d := range res.Disagreements {
		if d.Got == d.Question.Expect {
			t.Error("disagreement with matching classifications")
		}
		if d.Question.About == "" {
			t.Error("disagreement without diagnostic label")
		}
	}
}

// TestEmptyQueryVerification: the empty query has an empty (or
// trivial) verification set and verifies against itself.
func TestEmptyQueryVerification(t *testing.T) {
	u := boolean.MustUniverse(3)
	empty := query.Query{U: u}
	res, err := Verify(empty, oracle.Target(empty))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Error("empty query failed self-verification")
	}
}

func TestRunUntilFirst(t *testing.T) {
	u := boolean.MustUniverse(4)
	given := query.MustParse(u, "∀x1 → x2 ∃x3x4")
	vs := mustBuild(t, given)
	// Correct intent: all questions asked, none disagree.
	res := vs.RunUntilFirst(oracle.Target(given))
	if !res.Correct || res.QuestionsAsked != len(vs.Questions) {
		t.Fatalf("self run: %+v", res)
	}
	// Wrong intent: stops at the first disagreement.
	intended := query.MustParse(u, "∃x3x4")
	c := oracle.Count(oracle.Target(intended))
	res = vs.RunUntilFirst(c)
	if res.Correct {
		t.Fatal("difference missed")
	}
	if len(res.Disagreements) != 1 {
		t.Fatalf("disagreements = %d, want 1", len(res.Disagreements))
	}
	if res.QuestionsAsked != c.Questions || res.QuestionsAsked > len(vs.Questions) {
		t.Fatalf("asked %d of %d", res.QuestionsAsked, len(vs.Questions))
	}
}

func TestVerificationReportJSONRoundTrip(t *testing.T) {
	vs := mustBuild(t, paperQuery())
	data, err := vs.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Questions) != len(vs.Questions) {
		t.Fatalf("questions = %d, want %d", len(back.Questions), len(vs.Questions))
	}
	for i := range vs.Questions {
		if !back.Questions[i].Set.Equal(vs.Questions[i].Set) {
			t.Fatalf("question %d changed through JSON", i)
		}
		if back.Questions[i].Expect != vs.Questions[i].Expect {
			t.Fatalf("question %d expectation changed", i)
		}
		if back.Questions[i].Kind != vs.Questions[i].Kind {
			t.Fatalf("question %d kind changed", i)
		}
	}
	// The rebuilt set still verifies against the same query.
	res := back.Run(oracle.Target(vs.Query))
	if !res.Correct {
		t.Fatal("rebuilt set disagrees with its own query")
	}
	if !back.SelfConsistent() {
		t.Fatal("rebuilt set not self-consistent")
	}
}

func TestDecodeReportErrors(t *testing.T) {
	if _, err := DecodeReport([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := DecodeReport([]byte(`{"query":"zzz","variables":3}`)); err == nil {
		t.Error("bad query text accepted")
	}
	if _, err := DecodeReport([]byte(`{"query":"∃x1","variables":99}`)); err == nil {
		t.Error("oversized universe accepted")
	}
	if _, err := DecodeReport([]byte(`{"query":"∃x1","variables":2,"questions":[{"kind":"A1","expect":"answer","tuples":["1"]}]}`)); err == nil {
		t.Error("short tuple accepted")
	}
}

func TestSampleAndDetectionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	vs := mustBuild(t, paperQuery())
	// Sampling.
	sub := vs.Sample(rng, 4)
	if len(sub.Questions) != 4 {
		t.Fatalf("sample size = %d", len(sub.Questions))
	}
	if got := vs.Sample(rng, 100); len(got.Questions) != len(vs.Questions) {
		t.Fatal("oversample did not return full set")
	}
	if got := vs.Sample(rng, -3); len(got.Questions) != 0 {
		t.Fatal("negative sample returned questions")
	}
	// Detection: full set catches a different intent with certainty.
	intended := query.MustParse(u6, "∀x1x4 → x5 ∃x2x3")
	if rate := vs.DetectionRate(rng, oracle.Target(intended), len(vs.Questions), 20); rate != 1 {
		t.Fatalf("full-set detection rate = %v", rate)
	}
	// Equivalent intent: nothing to miss.
	if rate := vs.DetectionRate(rng, oracle.Target(vs.Query), 1, 20); rate != 1 {
		t.Fatalf("equivalent detection rate = %v", rate)
	}
	// A single question detects with probability ≈ disagreements/total.
	full := vs.Run(oracle.Target(intended))
	want := float64(len(full.Disagreements)) / float64(len(vs.Questions))
	rate := vs.DetectionRate(rng, oracle.Target(intended), 1, 4000)
	if rate < want-0.05 || rate > want+0.05 {
		t.Errorf("1-question detection rate %.3f, want ≈%.3f", rate, want)
	}
	if got := vs.DetectionRate(rng, oracle.Target(intended), 1, 0); got != 0 {
		t.Errorf("zero trials rate = %v", got)
	}
}
