package verify

// The verify half of the options-matrix differential test: the same
// verification set runs through every engine option combination and
// every legacy entry point, and all of them must reproduce the plain
// serial run — the same verdict, the same question count, the same
// disagreement list, and the same user-facing question transcript in
// set order (docs/ENGINE.md).

import (
	"fmt"
	"sort"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// verifyMatrixCases pairs a given query with an oracle-backing hidden
// query: one equivalent (clean verdict) and one different (a
// disagreement to find).
func verifyMatrixCases(t *testing.T) []struct {
	name          string
	given, hidden query.Query
} {
	t.Helper()
	u := boolean.MustUniverse(4)
	good := query.MustParse(u, "∀x1 → x2 ∃x3")
	bad := query.MustParse(u, "∀x1 → x3 ∃x3")
	return []struct {
		name          string
		given, hidden query.Query
	}{
		{"equivalent", good, good},
		{"different", good, bad},
	}
}

func transcriptOf(rec *oracle.Transcript) []string {
	var out []string
	for _, e := range rec.Copy() {
		out = append(out, fmt.Sprintf("%s=%v", e.Question.Key(), e.Answer))
	}
	return out
}

func sameResult(t *testing.T, label string, ref, got Result) {
	t.Helper()
	if got.Correct != ref.Correct || got.QuestionsAsked != ref.QuestionsAsked {
		t.Errorf("%s: (correct=%v, %d questions) differs from serial (correct=%v, %d questions)",
			label, got.Correct, got.QuestionsAsked, ref.Correct, ref.QuestionsAsked)
		return
	}
	if len(got.Disagreements) != len(ref.Disagreements) {
		t.Errorf("%s: %d disagreements vs %d serial", label, len(got.Disagreements), len(ref.Disagreements))
		return
	}
	for i := range ref.Disagreements {
		if got.Disagreements[i].Question.Set.Key() != ref.Disagreements[i].Question.Set.Key() {
			t.Errorf("%s: disagreement %d differs from serial", label, i)
			return
		}
	}
}

func sameTranscript(t *testing.T, label string, ref, got []string, sorted bool) {
	t.Helper()
	if sorted {
		ref, got = append([]string(nil), ref...), append([]string(nil), got...)
		sort.Strings(ref)
		sort.Strings(got)
	}
	if len(ref) != len(got) {
		t.Errorf("%s: %d questions vs %d serial", label, len(got), len(ref))
		return
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Errorf("%s: question %d is %s, serial asked %s", label, i, got[i], ref[i])
			return
		}
	}
}

// TestVerifyOptionsMatrix: every option combination reproduces the
// serial run on both the clean and the disagreeing case. The
// verification set has a fixed question order, and the run-facing
// accounting preserves it in every mode; the user-side transcript
// below a worker pool records in completion order, so the pooled
// combinations compare it as a multiset.
func TestVerifyOptionsMatrix(t *testing.T) {
	for _, tc := range verifyMatrixCases(t) {
		vs, err := Build(tc.given)
		if err != nil {
			t.Fatal(err)
		}
		collect := func(opts ...run.Option) ([]string, Result) {
			rec := oracle.Record(oracle.Target(tc.hidden))
			res := vs.RunWith(rec, opts...)
			return transcriptOf(rec), res
		}
		var refTr []string
		var refRes Result
		{
			rec := oracle.Record(oracle.Target(tc.hidden))
			refRes = vs.Run(rec)
			refTr = transcriptOf(rec)
		}
		combos := []struct {
			name   string
			opts   []run.Option
			sorted bool
		}{
			{name: "plain"},
			{name: "batch", opts: []run.Option{run.WithBatch()}},
			{name: "parallel-2", opts: []run.Option{run.WithParallel(2)}, sorted: true},
			{name: "parallel-8", opts: []run.Option{run.WithParallel(8)}, sorted: true},
			{name: "budget", opts: []run.Option{run.WithBudget(refRes.QuestionsAsked)}},
			{name: "memo", opts: []run.Option{run.WithMemo()}},
			{name: "counter", opts: []run.Option{run.WithCounter()}},
			{name: "steps", opts: []run.Option{run.WithSteps(func(run.Step) {})}},
			{name: "observed", opts: []run.Option{run.WithInstrumentation(Instrumentation{
				Spans:   obs.NewTracer(obs.NewTreeSink()),
				Metrics: obs.NewRegistry(),
			})}},
		}
		for _, combo := range combos {
			label := tc.name + " " + combo.name
			tr, res := collect(combo.opts...)
			sameResult(t, label, refRes, res)
			sameTranscript(t, label, refTr, tr, combo.sorted)
		}
	}
}

// TestVerifyLegacyEntryPointsPinned: the named entry points reproduce
// the engine run their documentation promises.
func TestVerifyLegacyEntryPointsPinned(t *testing.T) {
	for _, tc := range verifyMatrixCases(t) {
		vs, err := Build(tc.given)
		if err != nil {
			t.Fatal(err)
		}
		ask := func() oracle.Oracle { return oracle.Target(tc.hidden) }
		ref := vs.Run(ask())
		tracer := obs.NewTracer(obs.NewTreeSink())
		reg := obs.NewRegistry()
		for _, v := range []struct {
			name string
			got  Result
		}{
			{"RunParallel", vs.RunParallel(ask())},
			{"RunObserved", vs.RunObserved(ask(), tracer, reg)},
			{"RunParallelObserved", vs.RunParallelObserved(ask(), tracer, reg)},
			{"RunWith-zero", vs.RunWith(ask())},
		} {
			sameResult(t, tc.name+" "+v.name, ref, v.got)
		}
		if res, err := Verify(tc.given, ask()); err != nil {
			t.Errorf("%s Verify: %v", tc.name, err)
		} else {
			sameResult(t, tc.name+" Verify", ref, res)
		}
		if res, err := VerifyObserved(tc.given, ask(), Instrumentation{Spans: tracer, Metrics: reg}); err != nil {
			t.Errorf("%s VerifyObserved: %v", tc.name, err)
		} else {
			sameResult(t, tc.name+" VerifyObserved", ref, res)
		}
		if res, err := VerifyParallel(tc.given, ask()); err != nil {
			t.Errorf("%s VerifyParallel: %v", tc.name, err)
		} else {
			sameResult(t, tc.name+" VerifyParallel", ref, res)
		}
		if res, err := Run(tc.given, ask()); err != nil {
			t.Errorf("%s Run: %v", tc.name, err)
		} else {
			sameResult(t, tc.name+" Run", ref, res)
		}

		// RunUntilFirst pins to the engine's first-disagreement mode.
		first := vs.RunUntilFirst(ask())
		withFirst := vs.RunWith(ask(), run.WithFirstDisagreement())
		sameResult(t, tc.name+" RunUntilFirst", withFirst, first)
		if !ref.Correct && first.QuestionsAsked >= ref.QuestionsAsked && len(vs.Questions) > 1 {
			// A wrong query with a mid-set disagreement must stop early.
			if first.QuestionsAsked == ref.QuestionsAsked && len(first.Disagreements) > 0 &&
				first.Disagreements[0].Question.Set.Key() != vs.Questions[len(vs.Questions)-1].Set.Key() {
				t.Errorf("%s: RunUntilFirst asked the full set (%d questions) past the first disagreement",
					tc.name, first.QuestionsAsked)
			}
		}
	}
}
