package verify

import (
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// Focused tests for each question-family constructor of Fig 6.

func TestA2SkippedForBodylessHeads(t *testing.T) {
	u := boolean.MustUniverse(3)
	vs := mustBuild(t, query.MustParse(u, "∀x1 ∃x2x3"))
	if got := questionsOf(t, vs, A2); len(got) != 0 {
		t.Errorf("A2 emitted for a bodyless head: %v", got)
	}
	// N2 still probes it: {1^n, tg} with tg = 0 for ∀x1 (no other
	// heads, non-body variables false).
	n2 := questionsOf(t, vs, N2)
	if len(n2) != 1 {
		t.Fatalf("N2 count = %d", len(n2))
	}
	want := boolean.MustParseSet(u, "{111, 000}")
	if !n2[0].Set.Equal(want) {
		t.Errorf("N2 = %s, want %s", n2[0].Set.Format(u), want.Format(u))
	}
}

func TestA3ProductOfBodies(t *testing.T) {
	// Two bodies of the same head inside one conjunction: the roots
	// are the 2×2 product of excluded variables.
	u := boolean.MustUniverse(6)
	q := query.MustParse(u, "∀x1x2 → x6 ∀x3x4 → x6 ∃x1x2x3x4x5")
	vs := mustBuild(t, q)
	var a3 *Question
	for i := range vs.Questions {
		if vs.Questions[i].Kind == A3 && vs.Questions[i].Head == 5 {
			a3 = &vs.Questions[i]
		}
	}
	if a3 == nil {
		t.Fatal("A3 for head x6 missing")
	}
	// 1 all-true tuple + up to 4 roots (dedup may merge none here).
	if a3.Set.Size() != 5 {
		t.Fatalf("A3 has %d tuples, want 1 + 2×2 roots", a3.Set.Size())
	}
	// Every root excludes one variable from each body and keeps h
	// false.
	for _, tp := range a3.Set.Tuples() {
		if tp == u.All() {
			continue
		}
		if tp.Has(5) {
			t.Fatalf("root %s has the head true", u.Format(tp))
		}
		if tp.Contains(boolean.FromVars(0, 1)) || tp.Contains(boolean.FromVars(2, 3)) {
			t.Fatalf("root %s contains a complete body", u.Format(tp))
		}
	}
}

func TestN1SkipsChildrenViolatingUniversals(t *testing.T) {
	// §4.2: the child dropping an implied head is excluded, not
	// repaired.
	u := boolean.MustUniverse(4)
	q := query.MustParse(u, "∀x1 → x4 ∃x1x2x3")
	vs := mustBuild(t, q)
	n1 := questionsOf(t, vs, N1)
	if len(n1) != 1 {
		t.Fatalf("N1 count = %d", len(n1))
	}
	// Distinguishing tuple is 1111 (closure adds x4); children drop
	// x1, x2 or x3 — dropping x4 would violate ∀x1→x4.
	for _, tp := range n1[0].Set.Tuples() {
		if q.Violates(tp) {
			t.Fatalf("N1 contains violating tuple %s", u.Format(tp))
		}
	}
	if n1[0].Set.Has(u.MustParse("1110")) {
		t.Fatal("violating child 1110 not excluded")
	}
}

func TestA4OnlyNonHeads(t *testing.T) {
	u := boolean.MustUniverse(4)
	vs := mustBuild(t, query.MustParse(u, "∀x1 ∀x2 ∃x3x4"))
	a4 := questionsOf(t, vs, A4)
	if len(a4) != 1 {
		t.Fatalf("A4 count = %d", len(a4))
	}
	// 1^n plus one tuple per non-head (x3, x4).
	want := boolean.NewSet(u.All(), u.All().Without(2), u.All().Without(3))
	if !a4[0].Set.Equal(want) {
		t.Errorf("A4 = %s, want %s", a4[0].Set.Format(u), want.Format(u))
	}
	// All-heads query: no A4 at all.
	vsAll := mustBuild(t, query.MustParse(u, "∀x1 ∀x2 ∀x3 ∀x4"))
	if got := questionsOf(t, vsAll, A4); len(got) != 0 {
		t.Errorf("A4 emitted with no non-head variables")
	}
}

func TestGuaranteeTuplesExcludedFromN1(t *testing.T) {
	u := boolean.MustUniverse(4)
	// The only conjunction is the guarantee of the universal: no N1.
	vs := mustBuild(t, query.MustParse(u, "∀x1x2 → x3 ∃x4"))
	for _, q := range questionsOf(t, vs, N1) {
		if q.Conj == vs.Query.Closure(boolean.FromVars(0, 1, 2)) {
			t.Fatal("guarantee tuple got an N1 question")
		}
	}
}

func TestVerificationSetDeterministic(t *testing.T) {
	q := paperQuery()
	a := mustBuild(t, q)
	b := mustBuild(t, q)
	if len(a.Questions) != len(b.Questions) {
		t.Fatal("nondeterministic question count")
	}
	for i := range a.Questions {
		if !a.Questions[i].Set.Equal(b.Questions[i].Set) || a.Questions[i].Kind != b.Questions[i].Kind {
			t.Fatalf("question %d differs between builds", i)
		}
	}
}
