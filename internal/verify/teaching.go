package verify

import (
	"fmt"
	"math/bits"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// This file implements teaching sets — the minimal classified-example
// sequences of Goldman and Kearns that §5 of the paper cites as the
// analogue of verification sets ("A teaching sequence is the smallest
// sequence of classified examples a teacher must reveal to a learner
// to help it uniquely identify a target concept"). For small
// universes the exact minimum can be computed by exhaustive search,
// which experiment E18 uses to measure how close the paper's O(k)
// verification sets come to the information-theoretic optimum.

// TeachingExample is one classified object of a teaching set.
type TeachingExample struct {
	Object boolean.Set
	// Answer is the target query's classification.
	Answer bool
}

// MinimalTeachingSet returns a smallest set of classified objects
// from the pool that distinguishes target from every inequivalent
// query in the class: any learner that sees these examples can rule
// out every other candidate. The search is exact (breadth-first over
// subset sizes) and exponential in the pool; it returns an error for
// pools beyond 24 objects or when the pool cannot distinguish the
// target at all.
func MinimalTeachingSet(target query.Query, class []query.Query, pool []boolean.Set) ([]TeachingExample, error) {
	if len(pool) > 24 {
		return nil, fmt.Errorf("verify: teaching-set search over %d objects is exhaustive; cap is 24", len(pool))
	}
	// rivals[i] = bitmask of pool questions that separate rival i
	// from the target.
	var rivals []uint32
	for _, q := range class {
		if q.Equivalent(target) {
			continue
		}
		var mask uint32
		for i, obj := range pool {
			if q.Eval(obj) != target.Eval(obj) {
				mask |= 1 << uint(i)
			}
		}
		if mask == 0 {
			return nil, fmt.Errorf("verify: pool cannot distinguish %s from %s", target, q)
		}
		rivals = append(rivals, mask)
	}
	if len(rivals) == 0 {
		return nil, nil
	}
	// Exact minimum set cover over ≤24 elements by increasing size.
	best, ok := minCover(rivals, len(pool))
	if !ok {
		return nil, fmt.Errorf("verify: no covering subset found")
	}
	var out []TeachingExample
	for i := 0; i < len(pool); i++ {
		if best&(1<<uint(i)) != 0 {
			out = append(out, TeachingExample{Object: pool[i], Answer: target.Eval(pool[i])})
		}
	}
	return out, nil
}

// minCover finds a minimum-size subset (as a bitmask over n elements)
// hitting every rival mask. Branch-and-bound on the rival with the
// fewest options keeps tiny instances instant.
func minCover(rivals []uint32, n int) (uint32, bool) {
	bestMask := uint32(0)
	bestSize := n + 1
	var rec func(chosen uint32, size int, remaining []uint32)
	rec = func(chosen uint32, size int, remaining []uint32) {
		if size >= bestSize {
			return
		}
		// Find an uncovered rival with the fewest separating
		// questions.
		idx := -1
		minOpts := 33
		for i, m := range remaining {
			if m&chosen != 0 {
				continue // already covered
			}
			if opts := bits.OnesCount32(m); opts < minOpts {
				minOpts = opts
				idx = i
			}
		}
		if idx == -1 {
			bestMask, bestSize = chosen, size
			return
		}
		m := remaining[idx]
		for m != 0 {
			bit := m & (-m)
			m &^= bit
			rec(chosen|bit, size+1, remaining)
		}
	}
	rec(0, 0, rivals)
	return bestMask, bestSize <= n
}

// TeachingLowerBound returns |MinimalTeachingSet| for the target over
// the full object space of a tiny universe (n ≤ 2), together with the
// verification-set size, for the E18 comparison.
func TeachingLowerBound(target query.Query, class []query.Query) (teaching, verification int, err error) {
	u := target.U
	if u.N() > 2 {
		return 0, 0, fmt.Errorf("verify: exact teaching sets limited to 2 variables (object space 2^(2^n))")
	}
	pool := boolean.AllObjects(u)
	ts, err := MinimalTeachingSet(target, class, pool)
	if err != nil {
		return 0, 0, err
	}
	vs, err := Build(target)
	if err != nil {
		return 0, 0, err
	}
	return len(ts), len(vs.Questions), nil
}
