package verify

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// questions collects the membership questions of the set in its
// deterministic order.
func (vs Set) questions() []boolean.Set {
	qs := make([]boolean.Set, len(vs.Questions))
	for i, q := range vs.Questions {
		qs[i] = q.Set
	}
	return qs
}

// RunParallel is Run with the whole verification set issued as one
// batch: the questions of the A1–A4/N1–N2 families are mutually
// independent (each compares the intended query's classification of a
// fixed object set against the given query's), so a BatchOracle —
// e.g. oracle.Parallel around a simulated user — answers them
// concurrently. The result is identical to Run's: same questions,
// same QuestionsAsked, and disagreements in the set's deterministic
// order regardless of answer arrival order. Thin wrapper over the
// engine core — equivalent to vs.RunWith(o, run.WithBatch()).
func (vs Set) RunParallel(o oracle.Oracle) Result {
	return vs.runConfigured(o, run.Config{Batch: true})
}

// RunParallelObserved is RunParallel with observability: the batch is
// answered first, then the span stream — one child span per question,
// in set order — and the per-family counters are emitted from the
// calling goroutine, exactly as RunObserved emits them. Spans carry a
// "mode: parallel" attribute so traces distinguish batched runs; the
// per-question span durations are not meaningful in this mode (the
// answers arrived before the spans opened). Thin wrapper over the
// engine core.
func (vs Set) RunParallelObserved(o oracle.Oracle, tr *obs.Tracer, reg *obs.Registry) Result {
	return vs.runConfigured(o, run.Config{Batch: true, Ins: Instrumentation{Spans: tr, Metrics: reg}})
}

// VerifyParallel is Verify with the verification set run as one batch
// (see Set.RunParallel).
func VerifyParallel(qg query.Query, o oracle.Oracle) (Result, error) {
	vs, err := Build(qg)
	if err != nil {
		return Result{}, fmt.Errorf("verify: %w", err)
	}
	return vs.RunParallel(o), nil
}
