package verify

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// questions collects the membership questions of the set in its
// deterministic order.
func (vs Set) questions() []boolean.Set {
	qs := make([]boolean.Set, len(vs.Questions))
	for i, q := range vs.Questions {
		qs[i] = q.Set
	}
	return qs
}

// RunParallel is Run with the whole verification set issued as one
// batch: the questions of the A1–A4/N1–N2 families are mutually
// independent (each compares the intended query's classification of a
// fixed object set against the given query's), so a BatchOracle —
// e.g. oracle.Parallel around a simulated user — answers them
// concurrently. The result is identical to Run's: same questions,
// same QuestionsAsked, and disagreements in the set's deterministic
// order regardless of answer arrival order.
func (vs Set) RunParallel(o oracle.Oracle) Result {
	answers := oracle.AskAll(o, vs.questions())
	res := Result{Correct: true, QuestionsAsked: len(vs.Questions)}
	for i, q := range vs.Questions {
		if answers[i] != q.Expect {
			res.Correct = false
			res.Disagreements = append(res.Disagreements, Disagreement{Question: q, Got: answers[i]})
		}
	}
	return res
}

// RunParallelObserved is RunParallel with observability: the batch is
// answered first, then the span stream — one child span per question,
// in set order — and the per-family counters are emitted from the
// calling goroutine, exactly as RunObserved emits them. Spans carry a
// "mode: parallel" attribute so traces distinguish batched runs; the
// per-question span durations are not meaningful in this mode (the
// answers arrived before the spans opened).
func (vs Set) RunParallelObserved(o oracle.Oracle, tr *obs.Tracer, reg *obs.Registry) Result {
	root := tr.StartSpan("verify",
		obs.A("query", vs.Query.String()),
		obs.Af("questions", "%d", len(vs.Questions)),
		obs.A("mode", "parallel"))
	defer root.End()

	answers := oracle.AskAll(o, vs.questions())
	res := Result{Correct: true, QuestionsAsked: len(vs.Questions)}
	for i, q := range vs.Questions {
		got := answers[i]
		sp := root.StartChild("verify/"+string(q.Kind),
			obs.A("about", q.About),
			obs.Af("expect", "%v", q.Expect))
		if reg != nil {
			reg.Counter(obs.MetricVerifyQuestions, "kind", string(q.Kind)).Inc()
		}
		if got != q.Expect {
			res.Correct = false
			res.Disagreements = append(res.Disagreements, Disagreement{Question: q, Got: got})
			sp.Event("disagreement",
				obs.A("about", q.About),
				obs.Af("expect", "%v", q.Expect),
				obs.Af("got", "%v", got))
			if reg != nil {
				reg.Counter(obs.MetricVerifyDisagreements, "kind", string(q.Kind)).Inc()
			}
		}
		sp.End()
	}
	root.Annotate(obs.Af("correct", "%v", res.Correct))
	return res
}

// VerifyParallel is Verify with the verification set run as one batch
// (see Set.RunParallel).
func VerifyParallel(qg query.Query, o oracle.Oracle) (Result, error) {
	vs, err := Build(qg)
	if err != nil {
		return Result{}, fmt.Errorf("verify: %w", err)
	}
	return vs.RunParallel(o), nil
}
