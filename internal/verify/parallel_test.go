package verify_test

import (
	"math/rand"
	"reflect"
	"testing"

	"qhorn/internal/difffuzz"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/verify"
)

// TestRunParallelMatchesRun pins the batched verifier against the
// serial one on generated verification cases — including mutant
// intents, where the disagreement list (content and order) must match
// exactly, not just the verdict.
func TestRunParallelMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	checked, incorrect := 0, 0
	for i := 0; i < 80; i++ {
		c := difffuzz.GenCase(rng, difffuzz.ClassQhorn1, 2, 7)
		given := c.Hidden
		if m, _, ok := difffuzz.Mutant(rng, c.Hidden); ok && i%2 == 1 {
			given = m
		}
		vs, err := verify.Build(given)
		if err != nil {
			continue
		}
		checked++
		for _, workers := range []int{1, 4} {
			serial := vs.Run(oracle.Target(c.Hidden))
			parallel := vs.RunParallel(oracle.Parallel(oracle.Target(c.Hidden), workers))
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("given %s vs hidden %s (workers %d): serial %+v, parallel %+v",
					given, c.Hidden, workers, serial, parallel)
			}
			if !serial.Correct {
				incorrect++
			}
		}
	}
	if checked == 0 || incorrect == 0 {
		t.Fatalf("weak test: %d cases checked, %d incorrect verdicts — disagreement ordering never exercised", checked, incorrect)
	}
}

// TestRunParallelObservedMatchesObserved pins the observed batched
// run: identical Result, identical per-kind question and disagreement
// counters, and a complete span stream.
func TestRunParallelObservedMatchesObserved(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 20; i++ {
		c := difffuzz.GenCase(rng, difffuzz.ClassRP, 2, 6)
		given := c.Hidden
		if m, _, ok := difffuzz.Mutant(rng, c.Hidden); ok && i%2 == 1 {
			given = m
		}
		vs, err := verify.Build(given)
		if err != nil {
			continue
		}
		serialReg, parallelReg := obs.NewRegistry(), obs.NewRegistry()
		serial := vs.RunObserved(oracle.Target(c.Hidden), nil, serialReg)
		parallel := vs.RunParallelObserved(oracle.Parallel(oracle.Target(c.Hidden), 4), nil, parallelReg)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("given %s vs hidden %s: serial %+v, parallel %+v", given, c.Hidden, serial, parallel)
		}
		for _, kind := range []verify.Kind{verify.A1, verify.A2, verify.A3, verify.A4, verify.N1, verify.N2} {
			sq := serialReg.CounterValue(obs.MetricVerifyQuestions, "kind", string(kind))
			pq := parallelReg.CounterValue(obs.MetricVerifyQuestions, "kind", string(kind))
			if sq != pq {
				t.Errorf("given %s: %s questions serial %d, parallel %d", given, kind, sq, pq)
			}
			sd := serialReg.CounterValue(obs.MetricVerifyDisagreements, "kind", string(kind))
			pd := parallelReg.CounterValue(obs.MetricVerifyDisagreements, "kind", string(kind))
			if sd != pd {
				t.Errorf("given %s: %s disagreements serial %d, parallel %d", given, kind, sd, pd)
			}
		}
	}
}

// TestVerifyParallelVerdict pins the convenience wrapper: same verdict
// as Verify for an equivalent and a non-equivalent intent.
func TestVerifyParallelVerdict(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	c := difffuzz.GenCase(rng, difffuzz.ClassQhorn1, 4, 6)
	pool := oracle.Parallel(oracle.Target(c.Hidden), 4)
	res, err := verify.VerifyParallel(c.Hidden, pool)
	if err != nil {
		t.Fatalf("VerifyParallel: %v", err)
	}
	if !res.Correct {
		t.Errorf("equivalent intent rejected: %+v", res)
	}
}
