package verify

import (
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// Each test below constructs a (given, intended) pair in the exact
// configuration of one lemma of §4.3 and asserts that the predicted
// question family — and for the N-families the predicted direction —
// surfaces the difference.

func detectors(t *testing.T, given, intended query.Query) map[Kind]bool {
	t.Helper()
	vs := mustBuild(t, given)
	res := vs.Run(oracle.Target(intended))
	if res.Correct {
		t.Fatalf("given %s vs intended %s: no disagreement", given, intended)
	}
	kinds := map[Kind]bool{}
	for _, d := range res.Disagreements {
		kinds[d.Question.Kind] = true
	}
	return kinds
}

// Lemma 4.3 case 1: Dg || Di or Dg > Di — the A1 question (an answer
// for qg) is a non-answer for qi.
func TestLemma43Case1A1Detects(t *testing.T) {
	u := boolean.MustUniverse(4)
	// Incomparable dominant conjunction sets.
	given := query.MustParse(u, "∃x1x2")
	intended := query.MustParse(u, "∃x3x4")
	if kinds := detectors(t, given, intended); !kinds[A1] {
		t.Errorf("A1 did not detect incomparable conjunctions: %v", kinds)
	}
	// Dg > Di: the given conjunction is strictly below the intended.
	given = query.MustParse(u, "∃x1")
	intended = query.MustParse(u, "∃x1x2")
	if kinds := detectors(t, given, intended); !kinds[A1] {
		t.Errorf("A1 did not detect Dg > Di: %v", kinds)
	}
}

// Lemma 4.3 case 2: Dg < Di — replacing a distinguishing tuple with
// its children (N1, a non-answer for qg) is an answer for qi.
func TestLemma43Case2N1Detects(t *testing.T) {
	u := boolean.MustUniverse(4)
	given := query.MustParse(u, "∃x1x2x3")
	intended := query.MustParse(u, "∃x1x2") // descendant... ancestor: Di tuple above Dg's
	kinds := detectors(t, given, intended)
	if !kinds[N1] {
		t.Errorf("N1 did not detect Dg < Di: %v", kinds)
	}
}

// Lemma 4.4: ti > tg (the intended body is a strict subset) — A2 (an
// answer for qg) is a non-answer for qi.
func TestLemma44A2Detects(t *testing.T) {
	u := boolean.MustUniverse(4)
	given := query.MustParse(u, "∀x1x2 → x3 ∃x4")
	intended := query.MustParse(u, "∀x1 → x3 ∃x4")
	kinds := detectors(t, given, intended)
	if !kinds[A2] {
		t.Errorf("A2 did not detect the smaller intended body: %v", kinds)
	}
}

// Lemma 4.5: ti < tg (the intended body is a strict superset) — N2
// (a non-answer for qg) is an answer for qi.
func TestLemma45N2Detects(t *testing.T) {
	u := boolean.MustUniverse(4)
	given := query.MustParse(u, "∀x1 → x3 ∃x4")
	intended := query.MustParse(u, "∀x1x2 → x3 ∃x4")
	kinds := detectors(t, given, intended)
	if !kinds[N2] {
		t.Errorf("N2 did not detect the larger intended body: %v", kinds)
	}
}

// Lemma 4.6: the intended query has an extra body M incomparable with
// every given body, with M's guarantee dominated by a given
// existential expression — the A3 search roots catch it.
func TestLemma46A3Detects(t *testing.T) {
	u := boolean.MustUniverse(6)
	// Given: body x3x4 for x5, plus ∃x2x3x4x5 dominating the
	// guarantee. Intended adds ∀x2x3 → x5 (incomparable with x3x4,
	// contained in the conjunction's variables).
	given := query.MustParse(u, "∀x3x4 → x5 ∃x2x3x4 ∃x1")
	intended := query.MustParse(u, "∀x3x4 → x5 ∀x2x3 → x5 ∃x2x3x4 ∃x1")
	kinds := detectors(t, given, intended)
	if !kinds[A3] {
		t.Errorf("A3 did not detect the extra incomparable body: %v", kinds)
	}
}

// Lemma 4.7: a variable that is a head in the intended query but a
// non-head in the given query — A4 catches it.
func TestLemma47A4Detects(t *testing.T) {
	u := boolean.MustUniverse(4)
	given := query.MustParse(u, "∃x1x2 ∃x3 ∃x4")
	intended := query.MustParse(u, "∀x3 ∃x1x2 ∃x4")
	kinds := detectors(t, given, intended)
	if !kinds[A4] {
		t.Errorf("A4 did not detect the new head variable: %v", kinds)
	}
}

// TestVerificationDirections: for N-family disagreements the user
// answers "answer" where qg expects "non-answer", and vice versa for
// A-families — the directions the lemmas predict.
func TestVerificationDirections(t *testing.T) {
	u := boolean.MustUniverse(4)
	given := query.MustParse(u, "∀x1 → x3 ∃x4")
	intended := query.MustParse(u, "∀x1x2 → x3 ∃x4")
	vs := mustBuild(t, given)
	res := vs.Run(oracle.Target(intended))
	for _, d := range res.Disagreements {
		switch d.Question.Kind {
		case N1, N2:
			if d.Got != true {
				t.Errorf("%s disagreement should be user-answers-yes, got %v", d.Question.Kind, d.Got)
			}
		default:
			if d.Got != false {
				t.Errorf("%s disagreement should be user-answers-no, got %v", d.Question.Kind, d.Got)
			}
		}
	}
}

// TestQuestionAttribution: the structured Head/Conj fields point at
// the probed expression.
func TestQuestionAttribution(t *testing.T) {
	u := boolean.MustUniverse(6)
	q := query.MustParse(u, "∀x1x4 → x5 ∃x2x3")
	vs := mustBuild(t, q)
	for _, question := range vs.Questions {
		switch question.Kind {
		case A2, N2, A3:
			if question.Head < 0 || question.Head >= u.N() {
				t.Errorf("%s question without head attribution", question.Kind)
			}
		case A1, A4:
			if question.Head != -1 {
				t.Errorf("%s question with spurious head %d", question.Kind, question.Head)
			}
		case N1:
			if question.Conj.IsEmpty() {
				t.Errorf("N1 question without conjunction attribution")
			}
		}
	}
}
