package verify

import (
	"encoding/json"
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// Report is the wire form of a verification set: everything a query
// interface needs to render the §4 questions to a user — the
// normalized query, and per question its family, expectation,
// diagnostic label and tuples in the paper's 0/1 notation.
type Report struct {
	Query     string           `json:"query"`
	Variables int              `json:"variables"`
	Questions []QuestionReport `json:"questions"`
}

// QuestionReport is one question of a Report.
type QuestionReport struct {
	Kind   string   `json:"kind"`
	Expect string   `json:"expect"` // "answer" or "non-answer"
	About  string   `json:"about"`
	Tuples []string `json:"tuples"`
}

// Report renders the verification set for serialization.
func (vs Set) Report() Report {
	u := vs.Query.U
	r := Report{Query: vs.Query.String(), Variables: u.N()}
	for _, q := range vs.Questions {
		expect := "non-answer"
		if q.Expect {
			expect = "answer"
		}
		qr := QuestionReport{Kind: string(q.Kind), Expect: expect, About: q.About}
		for _, t := range q.Set.Tuples() {
			qr.Tuples = append(qr.Tuples, u.Format(t))
		}
		r.Questions = append(r.Questions, qr)
	}
	return r
}

// EncodeJSON renders the verification set as indented JSON.
func (vs Set) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(vs.Report(), "", "  ")
}

// DecodeReport parses a serialized verification report and rebuilds
// the question sets over the report's universe. The given query text
// is re-parsed, so the report round-trips into a runnable Set.
func DecodeReport(data []byte) (Set, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Set{}, err
	}
	u, err := boolean.NewUniverse(r.Variables)
	if err != nil {
		return Set{}, err
	}
	q, err := query.Parse(u, r.Query)
	if err != nil {
		return Set{}, fmt.Errorf("verify: report query: %w", err)
	}
	vs := Set{Query: q.Normalize()}
	for _, qr := range r.Questions {
		var tuples []boolean.Tuple
		for _, ts := range qr.Tuples {
			t, err := u.Parse(ts)
			if err != nil {
				return Set{}, err
			}
			tuples = append(tuples, t)
		}
		vs.Questions = append(vs.Questions, Question{
			Kind:   Kind(qr.Kind),
			Expect: qr.Expect == "answer",
			About:  qr.About,
			Set:    boolean.NewSet(tuples...),
			Head:   -1,
		})
	}
	return vs, nil
}
