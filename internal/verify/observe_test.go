package verify_test

import (
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
	"qhorn/internal/verify"
)

// TestRunObservedCoversEveryFamily pins the span and metric shape of
// an observed verification run: one child span per question named
// after its family, and kind-labeled counters summing to the set size.
func TestRunObservedCoversEveryFamily(t *testing.T) {
	u := boolean.MustUniverse(6)
	qg := query.MustParse(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	vs, err := verify.Build(qg)
	if err != nil {
		t.Fatal(err)
	}
	tree := obs.NewTreeSink()
	tr := obs.NewTracer(tree)
	reg := obs.NewRegistry()

	res := vs.RunObserved(oracle.Target(qg), tr, reg)
	if !res.Correct {
		t.Fatalf("self-verification disagreed: %+v", res.Disagreements)
	}

	names := tree.SpanNames()
	if !contains(names, "verify") {
		t.Errorf("no root verify span (have %v)", names)
	}
	kinds := map[verify.Kind]bool{}
	for _, q := range vs.Questions {
		kinds[q.Kind] = true
	}
	for k := range kinds {
		if !contains(names, "verify/"+string(k)) {
			t.Errorf("span verify/%s missing (have %v)", k, names)
		}
	}
	if got := reg.SumCounter(obs.MetricVerifyQuestions); got != int64(len(vs.Questions)) {
		t.Errorf("%s sum = %d, want %d", obs.MetricVerifyQuestions, got, len(vs.Questions))
	}
	if got := reg.SumCounter(obs.MetricVerifyDisagreements); got != 0 {
		t.Errorf("%s sum = %d, want 0", obs.MetricVerifyDisagreements, got)
	}
}

// TestRunObservedCountsDisagreements checks the disagreement counter
// and event against a user whose intent differs from the given query.
func TestRunObservedCountsDisagreements(t *testing.T) {
	u := boolean.MustUniverse(4)
	given := query.MustParse(u, "∀x1 → x2 ∃x3x4")
	intent := query.MustParse(u, "∀x1 → x2 ∃x3 ∃x4")
	vs, err := verify.Build(given)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res := vs.RunObserved(oracle.Target(intent), nil, reg)
	if res.Correct {
		t.Fatal("distinct queries verified as correct")
	}
	if got := reg.SumCounter(obs.MetricVerifyDisagreements); got != int64(len(res.Disagreements)) {
		t.Errorf("disagreement counter = %d, result lists %d", got, len(res.Disagreements))
	}
	if got := reg.SumCounter(obs.MetricVerifyQuestions); got != int64(res.QuestionsAsked) {
		t.Errorf("question counter = %d, asked %d", got, res.QuestionsAsked)
	}
}

// TestRunPhaseDurationHistograms checks instrumented verification —
// serial and batch — feeds qhorn_phase_seconds: one observation for
// the "verify" root and one "verify/<Kind>" observation per question.
func TestRunPhaseDurationHistograms(t *testing.T) {
	u := boolean.MustUniverse(6)
	qg := query.MustParse(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	vs, err := verify.Build(qg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts []run.Option
	}{
		{"serial", nil},
		{"batch", []run.Option{run.WithBatch()}},
	} {
		reg := obs.NewRegistry()
		opts := append([]run.Option{run.WithInstrumentation(run.Instrumentation{Metrics: reg})}, mode.opts...)
		res := vs.RunWith(oracle.Target(qg), opts...)
		if !res.Correct {
			t.Fatalf("%s: self-verification disagreed", mode.name)
		}
		if got := reg.Histogram(obs.MetricPhaseSeconds, obs.LatencyBuckets, "phase", "verify").Count(); got != 1 {
			t.Errorf("%s: verify root observations = %d, want 1", mode.name, got)
		}
		var perKind uint64
		for _, q := range vs.Questions {
			perKind = 0
			for _, other := range vs.Questions {
				if other.Kind == q.Kind {
					perKind++
				}
			}
			got := reg.Histogram(obs.MetricPhaseSeconds, obs.LatencyBuckets, "phase", "verify/"+string(q.Kind)).Count()
			if got != perKind {
				t.Errorf("%s: verify/%s observations = %d, want %d", mode.name, q.Kind, got, perKind)
			}
		}
	}
}

// TestRunObservedNilHooks checks nil tracer and registry are silent.
func TestRunObservedNilHooks(t *testing.T) {
	u := boolean.MustUniverse(3)
	qg := query.MustParse(u, "∀x1 → x2 ∃x3")
	res, err := verify.VerifyObserved(qg, oracle.Target(qg), verify.Instrumentation{})
	if err != nil || !res.Correct {
		t.Fatalf("nil hooks broke verification: %v %+v", err, res)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
