package verify

import (
	"math/rand"

	"qhorn/internal/oracle"
)

// Partial verification: a user may not have the patience for the full
// O(k) set. Sample asks a uniformly random subset of m questions; the
// guarantee of Theorem 4.2 then degrades from certainty to a
// detection probability, which experiment E20 measures against the
// fraction of the set asked.

// Sample returns a verification set containing m uniformly chosen
// questions of vs (all of them when m ≥ len). The relative order of
// the chosen questions is preserved.
func (vs Set) Sample(rng *rand.Rand, m int) Set {
	if m >= len(vs.Questions) {
		return vs
	}
	if m < 0 {
		m = 0
	}
	idx := rng.Perm(len(vs.Questions))[:m]
	chosen := make(map[int]bool, m)
	for _, i := range idx {
		chosen[i] = true
	}
	out := Set{Query: vs.Query}
	for i, q := range vs.Questions {
		if chosen[i] {
			out.Questions = append(out.Questions, q)
		}
	}
	return out
}

// DetectionRate estimates, over trials random m-question subsets, the
// probability that partial verification still catches the difference
// between the given query (vs.Query) and the intended one. It returns
// 1 when the queries are equivalent (there is nothing to miss).
func (vs Set) DetectionRate(rng *rand.Rand, intended oracle.Oracle, m, trials int) float64 {
	if trials <= 0 {
		return 0
	}
	full := vs.Run(intended)
	if full.Correct {
		return 1
	}
	// Record which questions disagree, then compute the hit chance of
	// random subsets directly.
	disagree := map[string]bool{}
	for _, d := range full.Disagreements {
		disagree[d.Question.Set.Key()] = true
	}
	hits := 0
	for t := 0; t < trials; t++ {
		sub := vs.Sample(rng, m)
		caught := false
		for _, q := range sub.Questions {
			if disagree[q.Set.Key()] {
				caught = true
				break
			}
		}
		if caught {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}
