package verify

import (
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

func TestMinimalTeachingSetDistinguishes(t *testing.T) {
	u := boolean.MustUniverse(2)
	class := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	for _, target := range class {
		ts, err := MinimalTeachingSet(target, class, pool)
		if err != nil {
			t.Fatalf("target %s: %v", target, err)
		}
		// Every inequivalent rival must disagree on some example.
		for _, rival := range class {
			if rival.Equivalent(target) {
				continue
			}
			separated := false
			for _, ex := range ts {
				if rival.Eval(ex.Object) != ex.Answer {
					separated = true
					break
				}
			}
			if !separated {
				t.Fatalf("teaching set of %s does not rule out %s", target, rival)
			}
		}
		// Examples carry the target's own classification.
		for _, ex := range ts {
			if target.Eval(ex.Object) != ex.Answer {
				t.Fatalf("example mislabeled for %s", target)
			}
		}
	}
}

func TestMinimalTeachingSetIsMinimal(t *testing.T) {
	// Brute-check minimality for a few targets: no strictly smaller
	// subset of the pool distinguishes.
	u := boolean.MustUniverse(2)
	class := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	check := 0
	for _, target := range class {
		ts, err := MinimalTeachingSet(target, class, pool)
		if err != nil {
			t.Fatal(err)
		}
		if len(ts) == 0 {
			continue
		}
		// Any subset of size len(ts)-1 must fail for some rival.
		size := len(ts) - 1
		found := subsetDistinguishes(target, class, pool, size)
		if found {
			t.Fatalf("target %s: a %d-example set suffices but %d were returned", target, size, len(ts))
		}
		check++
		if check == 6 {
			break // the inner search is exponential; a sample suffices
		}
	}
}

// subsetDistinguishes reports whether some size-k subset of the pool
// distinguishes the target from every rival.
func subsetDistinguishes(target query.Query, class []query.Query, pool []boolean.Set, k int) bool {
	idx := make([]int, k)
	var rec func(start, d int) bool
	covers := func(sel []int) bool {
		for _, rival := range class {
			if rival.Equivalent(target) {
				continue
			}
			sep := false
			for _, i := range sel {
				if rival.Eval(pool[i]) != target.Eval(pool[i]) {
					sep = true
					break
				}
			}
			if !sep {
				return false
			}
		}
		return true
	}
	rec = func(start, d int) bool {
		if d == k {
			return covers(idx)
		}
		for i := start; i < len(pool); i++ {
			idx[d] = i
			if rec(i+1, d+1) {
				return true
			}
		}
		return false
	}
	if k == 0 {
		return covers(nil)
	}
	return rec(0, 0)
}

// TestVerificationSetsNearTeachingOptimum: on two variables the O(k)
// verification sets stay within a small factor of the exact teaching
// minimum.
func TestVerificationSetsNearTeachingOptimum(t *testing.T) {
	u := boolean.MustUniverse(2)
	class := query.AllQueries(u)
	worstRatio := 0.0
	for _, target := range class {
		teach, ver, err := TeachingLowerBound(target, class)
		if err != nil {
			t.Fatal(err)
		}
		if teach == 0 {
			continue
		}
		if ver < teach {
			t.Fatalf("target %s: verification %d below teaching minimum %d — impossible", target, ver, teach)
		}
		if r := float64(ver) / float64(teach); r > worstRatio {
			worstRatio = r
		}
	}
	t.Logf("worst verification/teaching ratio on 2 variables: %.2f", worstRatio)
	if worstRatio > 4 {
		t.Errorf("verification sets are %.1f× the teaching optimum", worstRatio)
	}
}

func TestTeachingSetErrors(t *testing.T) {
	u := boolean.MustUniverse(2)
	target := query.MustParse(u, "∃x1")
	class := query.AllQueries(u)
	big := make([]boolean.Set, 25)
	if _, err := MinimalTeachingSet(target, class, big); err == nil {
		t.Error("oversized pool accepted")
	}
	// A pool that cannot separate ∃x1 from ∃x2.
	pool := []boolean.Set{boolean.MustParseSet(u, "{11}")}
	if _, err := MinimalTeachingSet(target, class, pool); err == nil {
		t.Error("inseparable pool accepted")
	}
	// Singleton class: nothing to teach.
	ts, err := MinimalTeachingSet(target, []query.Query{target}, pool)
	if err != nil || ts != nil {
		t.Errorf("singleton class: %v, %v", ts, err)
	}
	big3 := query.MustParse(boolean.MustUniverse(3), "∃x1")
	if _, _, err := TeachingLowerBound(big3, nil); err == nil {
		t.Error("3-variable TeachingLowerBound accepted")
	}
}

// TestTeachingSetLearnerCanUseIt: feeding the teaching set to the
// brute-force elimination principle identifies the target.
func TestTeachingSetLearnerCanUseIt(t *testing.T) {
	u := boolean.MustUniverse(2)
	class := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	for _, target := range class {
		ts, err := MinimalTeachingSet(target, class, pool)
		if err != nil {
			t.Fatal(err)
		}
		remaining := 0
		for _, q := range class {
			consistent := true
			for _, ex := range ts {
				if q.Eval(ex.Object) != ex.Answer {
					consistent = false
					break
				}
			}
			if consistent && !q.Equivalent(target) {
				remaining++
			}
		}
		if remaining != 0 {
			t.Fatalf("target %s: %d rivals survive its teaching set", target, remaining)
		}
	}
}
