package verify

import (
	"fmt"

	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// RunObserved is Run with observability: one root "verify" span, one
// child span per question named after its family ("verify/A1" …
// "verify/N2"), and kind-labeled question/disagreement counters. Both
// tr and reg may be nil (independently); nil hooks are silent.
func (vs Set) RunObserved(o oracle.Oracle, tr *obs.Tracer, reg *obs.Registry) Result {
	root := tr.StartSpan("verify",
		obs.A("query", vs.Query.String()),
		obs.Af("questions", "%d", len(vs.Questions)))
	defer root.End()

	res := Result{Correct: true, QuestionsAsked: len(vs.Questions)}
	for _, q := range vs.Questions {
		sp := root.StartChild("verify/"+string(q.Kind),
			obs.A("about", q.About),
			obs.Af("expect", "%v", q.Expect))
		got := o.Ask(q.Set)
		if reg != nil {
			reg.Counter(obs.MetricVerifyQuestions, "kind", string(q.Kind)).Inc()
		}
		if got != q.Expect {
			res.Correct = false
			res.Disagreements = append(res.Disagreements, Disagreement{Question: q, Got: got})
			sp.Event("disagreement",
				obs.A("about", q.About),
				obs.Af("expect", "%v", q.Expect),
				obs.Af("got", "%v", got))
			if reg != nil {
				reg.Counter(obs.MetricVerifyDisagreements, "kind", string(q.Kind)).Inc()
			}
		}
		sp.End()
	}
	root.Annotate(obs.Af("correct", "%v", res.Correct))
	return res
}

// VerifyObserved is Verify with observability (see Set.RunObserved).
func VerifyObserved(qg query.Query, o oracle.Oracle, tr *obs.Tracer, reg *obs.Registry) (Result, error) {
	vs, err := Build(qg)
	if err != nil {
		return Result{}, fmt.Errorf("verify: %w", err)
	}
	return vs.RunObserved(o, tr, reg), nil
}
