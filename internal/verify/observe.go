package verify

import (
	"fmt"

	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// RunObserved is Run with observability: one root "verify" span, one
// child span per question named after its family ("verify/A1" …
// "verify/N2"), and kind-labeled question/disagreement counters. Both
// tr and reg may be nil (independently); nil hooks are silent. Thin
// wrapper over the engine core — equivalent to
// vs.RunWith(o, run.WithInstrumentation(Instrumentation{Spans: tr,
// Metrics: reg})).
func (vs Set) RunObserved(o oracle.Oracle, tr *obs.Tracer, reg *obs.Registry) Result {
	return vs.runConfigured(o, run.Config{Ins: Instrumentation{Spans: tr, Metrics: reg}})
}

// VerifyObserved is Verify with observability (see Set.RunObserved).
// The hooks arrive as the engine's shared Instrumentation struct — the
// same type the learners take — so one instrumentation value threads
// through learning and verification alike.
func VerifyObserved(qg query.Query, o oracle.Oracle, ins Instrumentation) (Result, error) {
	vs, err := Build(qg)
	if err != nil {
		return Result{}, fmt.Errorf("verify: %w", err)
	}
	return vs.runConfigured(o, run.Config{Ins: ins}), nil
}
