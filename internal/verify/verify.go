// Package verify implements the query-verification model of §4 of
// the qhorn paper: given a user-specified role-preserving qhorn query
// qg, it constructs the verification set — O(k) membership questions
// of the six families of Fig. 6 (A1–A4 expected answers, N1–N2
// expected non-answers) — and decides whether the user's intended
// query agrees with qg on every question. By Theorem 4.2 the set is
// complete: any semantic difference between qg and the intended query
// surfaces as a disagreement on some question.
package verify

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// Kind identifies the question family of Fig. 6.
type Kind string

// The six question families of Fig. 6.
const (
	// A1: one question containing the distinguishing tuples of all
	// dominant existential expressions, including guarantee clauses.
	A1 Kind = "A1"
	// A2: per dominant universal Horn expression, the all-true tuple
	// plus the children of its universal distinguishing tuple.
	A2 Kind = "A2"
	// A3: per (dominant conjunction C, head h) with bodies Bi ⊂ C,
	// the all-true tuple plus the search roots excluding one body
	// variable from each Bi.
	A3 Kind = "A3"
	// A4: the all-true tuple plus one tuple per non-head variable x
	// with only x false.
	A4 Kind = "A4"
	// N1: per dominant existential distinguishing tuple not due to a
	// guarantee clause, its children plus all other A1 tuples.
	N1 Kind = "N1"
	// N2: per dominant universal Horn expression, the all-true tuple
	// plus its distinguishing tuple.
	N2 Kind = "N2"
)

// Question is one membership question of a verification set together
// with the classification the given query assigns it.
type Question struct {
	Kind Kind
	// Expect is the given query's classification: true for answer.
	Expect bool
	// Set is the membership question itself.
	Set boolean.Set
	// About describes the expression the question probes, for
	// diagnostics ("∀x1x4 → x5", "∃x2x3x4x5 / head x5", …).
	About string
	// Head is the universal head variable the question probes
	// (A2/N2/A3), or -1. The revision algorithm uses it to localize
	// repairs.
	Head int
	// Conj is the distinguishing tuple of the existential conjunction
	// the question probes (N1/A3), or 0.
	Conj boolean.Tuple
}

// Set is the verification set of a query: the full list of questions
// in deterministic order (A1, N1, A2, N2, A3, A4).
type Set struct {
	Query     query.Query // the normalized given query
	Questions []Question
}

// Build constructs the verification set of qg (§4.1–§4.2). qg must be
// role-preserving; Build normalizes it first (dominant expressions
// only, rules R1–R3).
func Build(qg query.Query) (Set, error) {
	if !qg.IsRolePreserving() {
		return Set{}, fmt.Errorf("verify: query %s is not role-preserving", qg)
	}
	nf := qg.Normalize()
	b := builder{q: nf, u: nf.U}
	b.build()
	return Set{Query: nf, Questions: b.questions}, nil
}

type builder struct {
	q         query.Query
	u         boolean.Universe
	questions []Question
}

func (b *builder) add(kind Kind, expect bool, about string, head int, conj boolean.Tuple, tuples ...boolean.Tuple) {
	b.questions = append(b.questions, Question{
		Kind:   kind,
		Expect: expect,
		Set:    boolean.NewSet(tuples...),
		About:  about,
		Head:   head,
		Conj:   conj,
	})
}

func (b *builder) build() {
	domU := b.q.DominantUniversals()
	domC := b.q.DominantConjunctions()
	all := b.u.All()

	// Guarantee-clause distinguishing tuples, to exclude from N1.
	guarantee := map[boolean.Tuple]bool{}
	for _, e := range domU {
		guarantee[b.q.Closure(e.Body.With(e.Head))] = true
	}

	// A1: all dominant existential distinguishing tuples, answer.
	// For the empty query this is the empty object (the footnote of
	// §3.2.2 explicitly allows asking about the empty set), which any
	// non-trivial intended query classifies as a non-answer.
	b.add(A1, true, "all dominant existential expressions", -1, 0, domC...)

	// N1: per non-guarantee distinguishing tuple, children plus the
	// other A1 tuples, non-answer.
	for _, t := range domC {
		if guarantee[t] {
			continue
		}
		tuples := b.childrenOf(t)
		for _, other := range domC {
			if other != t {
				tuples = append(tuples, other)
			}
		}
		b.add(N1, false, "∃"+varsName(t), -1, t, tuples...)
	}

	// A2 and N2: per dominant universal Horn expression.
	for _, e := range domU {
		tg := b.q.UniversalDistinguishingTuple(e)
		if !e.Body.IsEmpty() {
			tuples := []boolean.Tuple{all}
			for _, v := range e.Body.Vars() {
				tuples = append(tuples, tg.Without(v))
			}
			b.add(A2, true, e.String(), e.Head, 0, tuples...)
		}
		b.add(N2, false, e.String(), e.Head, 0, all, tg)
	}

	// A3: per dominant conjunction C and head h whose bodies include
	// at least one Bi ⊂ C, the search roots for further bodies.
	for _, c := range domC {
		byHead := map[int][]boolean.Tuple{}
		for _, e := range domU {
			if c.Contains(e.Body) && e.Body != c && !e.Body.IsEmpty() && c.Has(e.Head) {
				byHead[e.Head] = append(byHead[e.Head], e.Body)
			}
		}
		for h := 0; h < b.u.N(); h++ {
			bodies := byHead[h]
			if len(bodies) == 0 {
				continue
			}
			tuples := []boolean.Tuple{all}
			tuples = append(tuples, b.a3Roots(c, h, bodies)...)
			b.add(A3, true, fmt.Sprintf("∃%s / head x%d", varsName(c), h+1), h, c, tuples...)
		}
	}

	// A4: one question probing every non-head variable, answer.
	heads := b.q.UniversalHeads()
	nonHeads := b.u.Complement(heads)
	if !nonHeads.IsEmpty() {
		tuples := []boolean.Tuple{all}
		for _, x := range nonHeads.Vars() {
			tuples = append(tuples, all.Without(x))
		}
		b.add(A4, true, "non-head variables "+varsName(nonHeads), -1, 0, tuples...)
	}
}

// childrenOf returns the lattice children of an existential
// distinguishing tuple, excluding tuples that violate a universal
// Horn expression of the query (§4.2 N1).
func (b *builder) childrenOf(t boolean.Tuple) []boolean.Tuple {
	var out []boolean.Tuple
	for _, v := range t.Vars() {
		c := t.Without(v)
		if !b.q.Violates(c) {
			out = append(out, c)
		}
	}
	return out
}

// a3Roots builds the A3 search roots for conjunction c and head h
// with bodies (all ⊂ c): one body variable from each body false, the
// other conjunction variables true, h false, other heads true, and
// every remaining variable true when that does not complete a
// violated universal expression (§4.2's construction).
func (b *builder) a3Roots(c boolean.Tuple, h int, bodies []boolean.Tuple) []boolean.Tuple {
	heads := b.q.UniversalHeads()
	outside := b.u.Complement(c.Union(heads))
	var roots []boolean.Tuple
	seen := map[boolean.Tuple]bool{}
	var rec func(i int, excluded boolean.Tuple)
	rec = func(i int, excluded boolean.Tuple) {
		if i == len(bodies) {
			t := c.Minus(excluded).Union(heads).Without(h)
			// Greedily raise the variables outside C ∪ heads.
			for _, w := range outside.Vars() {
				if !b.q.Violates(t.With(w)) {
					t = t.With(w)
				}
			}
			if !seen[t] {
				seen[t] = true
				roots = append(roots, t)
			}
			return
		}
		for _, v := range bodies[i].Vars() {
			rec(i+1, excluded.With(v))
		}
	}
	rec(0, 0)
	return roots
}

func varsName(t boolean.Tuple) string {
	s := ""
	for _, v := range t.Vars() {
		s += fmt.Sprintf("x%d", v+1)
	}
	return s
}

// Disagreement reports one verification question on which the user's
// intended query differs from the given query.
type Disagreement struct {
	Question Question
	// Got is the user's classification of the question.
	Got bool
}

// Result is the outcome of verifying a query against a user.
type Result struct {
	// Correct is true when the user agreed with every question.
	Correct bool
	// Disagreements lists every question the user classified
	// differently from the given query.
	Disagreements []Disagreement
	// QuestionsAsked is the size of the verification set.
	QuestionsAsked int
}

// Verify asks the user (the oracle) every question of the
// verification set and reports whether the given query is correct —
// i.e. whether the user agreed with the given query's classification
// of every question. By Theorem 4.2 a semantically incorrect query
// always produces at least one disagreement.
func Verify(qg query.Query, o oracle.Oracle) (Result, error) {
	vs, err := Build(qg)
	if err != nil {
		return Result{}, err
	}
	return vs.Run(o), nil
}

// Run asks every question of the set and collects disagreements. It is
// a thin wrapper over the run engine's configured core (options.go)
// with a zero configuration: serial, silent, full set.
func (vs Set) Run(o oracle.Oracle) Result {
	return vs.runConfigured(o, run.Config{})
}

// RunUntilFirst asks questions only until the first disagreement —
// the cheap interactive mode when a yes/no verdict is all that is
// needed. QuestionsAsked reflects the questions actually posed. Thin
// wrapper over the engine core with FirstOnly set (the
// run.WithFirstDisagreement option).
func (vs Set) RunUntilFirst(o oracle.Oracle) Result {
	return vs.runConfigured(o, run.Config{FirstOnly: true})
}

// SelfConsistent reports whether the given query classifies every
// question of its own verification set as expected. It always holds
// for role-preserving queries and is checked by tests; a false result
// indicates a bug in the construction.
func (vs Set) SelfConsistent() bool {
	for _, q := range vs.Questions {
		if vs.Query.Eval(q.Set) != q.Expect {
			return false
		}
	}
	return true
}
