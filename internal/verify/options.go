package verify

// This file is the verifier's face of the composable run engine
// (internal/run, docs/ENGINE.md): the option-driven entry points, the
// shared Instrumentation alias, and the one configured core that every
// exported Run* variant delegates to. The legacy entry points — Run,
// RunObserved, RunParallel, RunParallelObserved, RunUntilFirst — are
// thin wrappers fixing one Config each; their behavior (questions,
// spans, counters, results) is pinned bit-identical by the options
// matrix tests.

import (
	"time"

	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// timePhase returns a func observing the phase's wall time into the
// engine-wide phase-duration histogram (qhorn_phase_seconds), or a
// no-op when metrics are off. Verification phases are the root
// "verify" span and the per-family "verify/<Kind>" children; in batch
// mode the children cover bookkeeping only (the set was answered up
// front), so the root's observation is the one that bounds the asking.
func timePhase(cfg run.Config, name string) func() {
	if cfg.Ins.Metrics == nil {
		return func() {}
	}
	h := cfg.Ins.Metrics.Histogram(obs.MetricPhaseSeconds, obs.LatencyBuckets, "phase", name)
	begun := time.Now()
	return func() { h.Observe(time.Since(begun).Seconds()) }
}

// Instrumentation bundles the observability hooks of a verification
// run. It is the engine's shared instrumentation type — the same value
// threads through learning (learn.Instrumentation) and verification.
type Instrumentation = run.Instrumentation

// Run builds the verification set of qg and runs it against o under
// the given engine options: run.WithInstrumentation for spans and
// metrics, run.WithSteps for per-question steps, run.WithParallel or
// run.WithBatch for batched asking, run.WithFirstDisagreement to stop
// at the first disagreement, and the oracle wrapper options
// (run.WithBudget, run.WithMemo, …) for the question stack.
func Run(qg query.Query, o oracle.Oracle, opts ...run.Option) (Result, error) {
	vs, err := Build(qg)
	if err != nil {
		return Result{}, err
	}
	return vs.RunWith(o, opts...), nil
}

// RunWith runs an already-built verification set under engine options
// (see Run). The oracle wrapper stack is assembled by the engine; the
// set is asked exactly once, in its deterministic order.
func (vs Set) RunWith(o oracle.Oracle, opts ...run.Option) Result {
	cfg := run.New(opts...)
	st := cfg.Assemble(o)
	return vs.runConfigured(st.Oracle, cfg)
}

// runConfigured is the single verification core. Every exported run
// variant is a fixed Config over this one path:
//
//	Run                  → Config{}
//	RunObserved          → Config{Ins: {Spans, Metrics}}
//	RunParallel          → Config{Batch: true}
//	RunParallelObserved  → Config{Batch: true, Ins: {Spans, Metrics}}
//	RunUntilFirst        → Config{FirstOnly: true}
//
// In batch mode the whole set is answered first (the questions are
// mutually independent), then spans, steps and counters are emitted in
// set order from the calling goroutine; serial mode opens each
// question's span before asking, so span durations cover the ask.
func (vs Set) runConfigured(o oracle.Oracle, cfg run.Config) Result {
	if cfg.FirstOnly {
		return vs.runFirst(o, cfg)
	}
	attrs := []obs.Attr{
		obs.A("query", vs.Query.String()),
		obs.Af("questions", "%d", len(vs.Questions)),
	}
	if cfg.Batch {
		attrs = append(attrs, obs.A("mode", "parallel"))
	}
	root := cfg.Ins.Spans.StartSpan("verify", attrs...)
	defer root.End()
	defer timePhase(cfg, "verify")()

	var answers []bool
	if cfg.Batch {
		answers = oracle.AskAll(o, vs.questions())
	}
	res := Result{Correct: true, QuestionsAsked: len(vs.Questions)}
	for i, q := range vs.Questions {
		sp := root.StartChild("verify/"+string(q.Kind),
			obs.A("about", q.About),
			obs.Af("expect", "%v", q.Expect))
		doneKind := timePhase(cfg, "verify/"+string(q.Kind))
		var got bool
		if cfg.Batch {
			got = answers[i]
		} else {
			got = o.Ask(q.Set)
		}
		vs.observe(cfg, q, got, &res, sp)
		sp.End()
		doneKind()
	}
	root.Annotate(obs.Af("correct", "%v", res.Correct))
	return res
}

// runFirst is the FirstOnly core: questions are asked serially only
// until the first disagreement, and QuestionsAsked reflects the
// questions actually posed. Batch mode is ignored — stopping early is
// the point.
func (vs Set) runFirst(o oracle.Oracle, cfg run.Config) Result {
	root := cfg.Ins.Spans.StartSpan("verify",
		obs.A("query", vs.Query.String()),
		obs.Af("questions", "%d", len(vs.Questions)),
		obs.A("mode", "first"))
	defer root.End()
	defer timePhase(cfg, "verify")()

	res := Result{Correct: true}
	for _, q := range vs.Questions {
		res.QuestionsAsked++
		sp := root.StartChild("verify/"+string(q.Kind),
			obs.A("about", q.About),
			obs.Af("expect", "%v", q.Expect))
		doneKind := timePhase(cfg, "verify/"+string(q.Kind))
		got := o.Ask(q.Set)
		vs.observe(cfg, q, got, &res, sp)
		sp.End()
		doneKind()
		if !res.Correct {
			break
		}
	}
	root.Annotate(obs.Af("correct", "%v", res.Correct))
	return res
}

// observe records one answered question: the step, the kind-labeled
// counters, and — on disagreement — the result entry and span event.
func (vs Set) observe(cfg run.Config, q Question, got bool, res *Result, sp *obs.Span) {
	if cfg.Ins.Steps != nil {
		cfg.Ins.Steps(run.Step{
			Phase:    "verify/" + string(q.Kind),
			Purpose:  q.About,
			Question: q.Set,
			Answer:   got,
		})
	}
	if cfg.Ins.Metrics != nil {
		cfg.Ins.Metrics.Counter(obs.MetricVerifyQuestions, "kind", string(q.Kind)).Inc()
	}
	if got != q.Expect {
		res.Correct = false
		res.Disagreements = append(res.Disagreements, Disagreement{Question: q, Got: got})
		sp.Event("disagreement",
			obs.A("about", q.About),
			obs.Af("expect", "%v", q.Expect),
			obs.Af("got", "%v", got))
		if cfg.Ins.Metrics != nil {
			cfg.Ins.Metrics.Counter(obs.MetricVerifyDisagreements, "kind", string(q.Kind)).Inc()
		}
	}
}
