package verify_test

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/verify"
)

func ExampleBuild() {
	u := boolean.MustUniverse(4)
	q := query.MustParse(u, "∀x1 → x2 ∃x3x4")
	vs, err := verify.Build(q)
	if err != nil {
		panic(err)
	}
	for _, question := range vs.Questions {
		expect := "non-answer"
		if question.Expect {
			expect = "answer"
		}
		fmt.Printf("[%s] %-10s %s\n", question.Kind, expect, question.Set.Format(u))
	}
	// Output:
	// [A1] answer     {1100, 0011}
	// [N1] non-answer {1100, 0010, 0001}
	// [A2] answer     {0000, 1111}
	// [N2] non-answer {1000, 1111}
	// [A3] answer     {0011, 1111}
	// [A4] answer     {1110, 1101, 0111, 1111}
}

func ExampleVerify() {
	u := boolean.MustUniverse(4)
	given := query.MustParse(u, "∀x1 → x2 ∃x3x4")
	// The user actually wants a different head: the verification set
	// catches it (Theorem 4.2).
	intended := query.MustParse(u, "∀x1 → x3 ∃x3x4")
	res, err := verify.Verify(given, oracle.Target(intended))
	if err != nil {
		panic(err)
	}
	fmt.Println("correct:", res.Correct)
	fmt.Println("first caught by:", res.Disagreements[0].Question.Kind)
	// Output:
	// correct: false
	// first caught by: A1
}
