package session

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func TestSessionRecordsAndMemoizes(t *testing.T) {
	u := boolean.MustUniverse(3)
	target := query.MustParse(u, "∃x1")
	c := oracle.Count(oracle.Target(target))
	s := New(c)
	q := boolean.MustParseSet(u, "{100}")
	if !s.Ask(q) || !s.Ask(q) {
		t.Fatal("wrong answers")
	}
	if c.Questions != 1 {
		t.Fatalf("user asked %d times, want 1", c.Questions)
	}
	if s.Len() != 1 || s.LiveQuestions != 1 {
		t.Fatalf("history len=%d live=%d", s.Len(), s.LiveQuestions)
	}
	e := s.Entries()
	if len(e) != 1 || !e[0].Answer || e[0].Amended {
		t.Fatalf("entries = %+v", e)
	}
}

func TestAmendAndReplay(t *testing.T) {
	// The §5 scenario: the user misanswers one question, the learner
	// converges to the wrong query; the user reviews the history,
	// flips the mistake, and the re-run recovers the target while
	// replaying everything already answered for free.
	u := boolean.MustUniverse(4)
	target := query.MustParse(u, "∀x1 → x2 ∃x3 ∃x4")
	truth := oracle.Target(target)

	// A user who lies on exactly the 3rd distinct question.
	asked := 0
	liar := oracle.Func(func(q boolean.Set) bool {
		asked++
		a := truth.Ask(q)
		if asked == 3 {
			return !a
		}
		return a
	})

	s := New(liar)
	wrong, _ := learn.RolePreserving(u, s)
	if wrong.Equivalent(target) {
		t.Skip("lie happened to be harmless for this target")
	}

	// The user reviews the history and spots the bad answer.
	bad := -1
	for i, e := range s.Entries() {
		if truth.Ask(e.Question) != e.Answer {
			bad = i
		}
	}
	if bad < 0 {
		t.Fatal("no bad answer in history")
	}
	if err := s.Amend(bad); err != nil {
		t.Fatal(err)
	}
	if !s.Entries()[bad].Amended {
		t.Fatal("amendment not marked")
	}

	s.ResetRun()
	relearned, _ := learn.RolePreserving(u, s)
	if !relearned.Equivalent(target) {
		t.Fatalf("after amendment learned %s, want %s", relearned, target)
	}
	if s.LiveQuestions >= s.Len() {
		t.Fatalf("re-run asked %d live questions with %d on record: no replay benefit",
			s.LiveQuestions, s.Len())
	}
}

func TestAmendRandomizedRecovery(t *testing.T) {
	// Property: for random targets and a single random lie, amending
	// the lie always recovers the target.
	rng := rand.New(rand.NewSource(61))
	recovered := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		n := 3 + rng.Intn(5)
		target := query.GenRolePreserving(rng, n, query.RPOptions{
			Heads: 1, BodiesPerHead: 1, MaxBodySize: 2, Conjs: 2, MaxConjSize: 3,
		})
		truth := oracle.Target(target)
		lieAt := 1 + rng.Intn(8)
		asked := 0
		liar := oracle.Func(func(q boolean.Set) bool {
			asked++
			a := truth.Ask(q)
			if asked == lieAt {
				return !a
			}
			return a
		})
		s := New(liar)
		learn.RolePreserving(target.U, s)
		// Fix every lie (there is at most one distinct question lied
		// about, but the same wrong answer may be memoized).
		for j, e := range s.Entries() {
			if truth.Ask(e.Question) != e.Answer {
				if err := s.Amend(j); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.ResetRun()
		relearned, _ := learn.RolePreserving(target.U, s)
		if relearned.Equivalent(target) {
			recovered++
		} else {
			t.Errorf("trial %d: target %s relearned as %s", i, target, relearned)
		}
	}
	if recovered != trials {
		t.Errorf("recovered %d/%d", recovered, trials)
	}
}

func TestAmendErrors(t *testing.T) {
	s := New(oracle.Func(func(boolean.Set) bool { return true }))
	if err := s.Amend(0); err == nil {
		t.Error("Amend on empty history succeeded")
	}
	if err := s.AmendQuestion(boolean.NewSet()); err == nil {
		t.Error("AmendQuestion on unknown question succeeded")
	}
	s.Ask(boolean.NewSet(boolean.FromVars(0)))
	if err := s.Amend(1); err == nil {
		t.Error("Amend out of range succeeded")
	}
	if err := s.AmendQuestion(boolean.NewSet(boolean.FromVars(0))); err != nil {
		t.Error(err)
	}
	if s.Entries()[0].Answer {
		t.Error("AmendQuestion did not flip")
	}
}

func TestForget(t *testing.T) {
	u := boolean.MustUniverse(2)
	c := oracle.Count(oracle.Target(query.MustParse(u, "∃x1")))
	s := New(c)
	q1 := boolean.MustParseSet(u, "{10}")
	q2 := boolean.MustParseSet(u, "{01}")
	s.Ask(q1)
	s.Ask(q2)
	if err := s.Forget(1); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("len after Forget = %d", s.Len())
	}
	// q2 must be re-asked; q1 replays.
	s.Ask(q1)
	s.Ask(q2)
	if c.Questions != 3 {
		t.Fatalf("user asked %d times, want 3", c.Questions)
	}
	if err := s.Forget(5); err == nil {
		t.Error("Forget out of range succeeded")
	}
}

func TestSessionPersistence(t *testing.T) {
	u := boolean.MustUniverse(4)
	target := query.MustParse(u, "∀x1 → x2 ∃x3x4")
	truth := oracle.Target(target)

	// First sitting: learn, then save.
	s1 := New(oracle.Count(truth))
	first, _ := learn.RolePreserving(u, s1)
	if !first.Equivalent(target) {
		t.Fatal("first sitting failed")
	}
	data, err := s1.EncodeJSON(u)
	if err != nil {
		t.Fatal(err)
	}

	// Second sitting: restore over a counting oracle; re-learning must
	// cost zero live questions.
	c := oracle.Count(truth)
	s2, u2, err := DecodeJSON(data, c)
	if err != nil {
		t.Fatal(err)
	}
	if u2.N() != 4 || s2.Len() != s1.Len() {
		t.Fatalf("restored: n=%d len=%d", u2.N(), s2.Len())
	}
	again, _ := learn.RolePreserving(u2, s2)
	if !again.Equivalent(target) {
		t.Fatal("restored session learned differently")
	}
	if c.Questions != 0 {
		t.Fatalf("restored session asked %d live questions", c.Questions)
	}
	// Amendments survive the round trip.
	if err := s1.Amend(0); err != nil {
		t.Fatal(err)
	}
	data, err = s1.EncodeJSON(u)
	if err != nil {
		t.Fatal(err)
	}
	s3, _, err := DecodeJSON(data, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Entries()[0].Amended || s3.Entries()[0].Answer == s2.Entries()[0].Answer {
		t.Fatal("amendment lost through persistence")
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	truth := oracle.Func(func(boolean.Set) bool { return false })
	if _, _, err := DecodeJSON([]byte(`{`), truth); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, _, err := DecodeJSON([]byte(`{"variables":99}`), truth); err == nil {
		t.Error("oversized universe accepted")
	}
	if _, _, err := DecodeJSON([]byte(`{"variables":2,"entries":[{"question":["1"],"answer":true}]}`), truth); err == nil {
		t.Error("short tuple accepted")
	}
	dup := `{"variables":2,"entries":[{"question":["10"],"answer":true},{"question":["10"],"answer":false}]}`
	if _, _, err := DecodeJSON([]byte(dup), truth); err == nil {
		t.Error("duplicate entries accepted")
	}
}

func TestInconsistentWithAndAmendAll(t *testing.T) {
	u := boolean.MustUniverse(4)
	target := query.MustParse(u, "∀x1 → x2 ∃x3x4")
	truth := oracle.Target(target)
	asked := 0
	liar := oracle.Func(func(q boolean.Set) bool {
		asked++
		a := truth.Ask(q)
		if asked == 2 || asked == 5 {
			return !a
		}
		return a
	})
	s := New(liar)
	learn.RolePreserving(u, s)
	bad := s.InconsistentWith(truth.Ask)
	if len(bad) == 0 {
		t.Skip("both lies were on duplicate questions")
	}
	if err := s.AmendAll(bad); err != nil {
		t.Fatal(err)
	}
	if got := s.InconsistentWith(truth.Ask); got != nil {
		t.Fatalf("still inconsistent at %v", got)
	}
	again, _ := learn.RolePreserving(u, s)
	if !again.Equivalent(target) {
		t.Fatalf("after AmendAll learned %s", again)
	}
	if err := s.AmendAll([]int{99}); err == nil {
		t.Error("out-of-range AmendAll succeeded")
	}
}
