package session_test

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/session"
)

func Example() {
	u := boolean.MustUniverse(4)
	intended := query.MustParse(u, "∀x1 → x2 ∃x3x4")
	truth := oracle.Target(intended)

	// A user who misanswers the second question.
	asked := 0
	user := oracle.Func(func(q boolean.Set) bool {
		asked++
		a := truth.Ask(q)
		if asked == 2 {
			return !a
		}
		return a
	})

	s := session.New(user)
	first, _ := learn.RolePreserving(u, s)
	fmt.Println("with the mistake:", first.Equivalent(intended))

	// Review the history, flip the bad response, re-run: the
	// corrected answers replay without consulting the user again.
	for i, e := range s.Entries() {
		if truth.Ask(e.Question) != e.Answer {
			s.Amend(i)
		}
	}
	s.ResetRun()
	fixed, _ := learn.RolePreserving(u, s)
	fmt.Println("after amendment:", fixed.Equivalent(intended))
	// Output:
	// with the mistake: false
	// after amendment: true
}
