package session_test

// Property tests for the interaction-history persistence layer: a
// session serialized mid-lifecycle — including after arbitrary
// amendments — must decode into a session whose history and replay
// behavior are indistinguishable from the original. The histories are
// not hand-written: each trial learns a randomly generated hidden
// query (the difffuzz generators) through a session, amends random
// entries, round-trips through EncodeJSON/DecodeJSON and then re-runs
// the learner over both the original and the decoded session,
// demanding bit-identical results.

import (
	"bytes"
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/difffuzz"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	engine "qhorn/internal/run"
	"qhorn/internal/session"
)

func propTrials(t *testing.T) int {
	if testing.Short() {
		return 25
	}
	return 150
}

// sameEntries asserts two histories are identical: same order, same
// questions, same answers, same amendment flags.
func sameEntries(t *testing.T, label string, got, want []session.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Question.Key() != want[i].Question.Key() {
			t.Fatalf("%s: entry %d question %q, want %q", label, i, got[i].Question.Key(), want[i].Question.Key())
		}
		if got[i].Answer != want[i].Answer {
			t.Fatalf("%s: entry %d answer %v, want %v", label, i, got[i].Answer, want[i].Answer)
		}
		if got[i].Amended != want[i].Amended {
			t.Fatalf("%s: entry %d amended %v, want %v", label, i, got[i].Amended, want[i].Amended)
		}
	}
}

func TestPersistRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	classes := []difffuzz.Class{difffuzz.ClassQhorn1, difffuzz.ClassRP}
	for trial := 0; trial < propTrials(t); trial++ {
		class := classes[trial%len(classes)]
		alg := engine.Qhorn1
		if class == difffuzz.ClassRP {
			alg = engine.RolePreserving
		}
		hidden := difffuzz.GenCase(rng, class, 3, 6).Hidden
		u := hidden.U

		// Build a real history: learn the hidden query through a
		// session, then flip a few random answers.
		orig := session.New(oracle.Target(hidden))
		learn.Run(u, orig, engine.WithAlgorithm(alg), engine.WithBatch())
		for k := rng.Intn(4); k > 0 && orig.Len() > 0; k-- {
			if err := orig.Amend(rng.Intn(orig.Len())); err != nil {
				t.Fatalf("trial %d: amend: %v", trial, err)
			}
		}

		data, err := orig.EncodeJSON(u)
		if err != nil {
			t.Fatalf("trial %d (%s): encode: %v", trial, hidden, err)
		}
		decoded, du, err := session.DecodeJSON(data, oracle.Target(hidden))
		if err != nil {
			t.Fatalf("trial %d (%s): decode: %v", trial, hidden, err)
		}
		if du.N() != u.N() {
			t.Fatalf("trial %d: decoded universe %d vars, want %d", trial, du.N(), u.N())
		}
		sameEntries(t, "decoded history", decoded.Entries(), orig.Entries())

		// Encoding is stable: re-encoding the decoded session yields
		// the same bytes.
		data2, err := decoded.EncodeJSON(du)
		if err != nil {
			t.Fatalf("trial %d: re-encode: %v", trial, err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("trial %d (%s): encode/decode/encode is not a fixed point", trial, hidden)
		}

		// Replay behavior is unchanged: re-learning over the original
		// (amended) session and over its decoded copy must ask the
		// same live questions and produce the same query.
		orig.ResetRun()
		qOrig, _ := learn.Run(u, orig, engine.WithAlgorithm(alg), engine.WithBatch())
		qDec, _ := learn.Run(du, decoded, engine.WithAlgorithm(alg), engine.WithBatch())
		if !qOrig.Equal(qDec) {
			t.Fatalf("trial %d (%s): relearn over decoded history gives %s, original gives %s",
				trial, hidden, qDec, qOrig)
		}
		if decoded.LiveQuestions != orig.LiveQuestions {
			t.Fatalf("trial %d (%s): decoded relearn asked %d live questions, original %d",
				trial, hidden, decoded.LiveQuestions, orig.LiveQuestions)
		}
		sameEntries(t, "post-relearn history", decoded.Entries(), orig.Entries())
	}
}

// TestAskBatchMatchesSerialAsk drives identical random batches —
// including intra-batch duplicates and already-recorded questions —
// through AskBatch on one session and a serial Ask loop on another:
// answers, history order and live-question counts must be identical.
func TestAskBatchMatchesSerialAsk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < propTrials(t); trial++ {
		n := 3 + rng.Intn(3)
		u, err := boolean.NewUniverse(n)
		if err != nil {
			t.Fatal(err)
		}
		hidden := difffuzz.GenCase(rng, difffuzz.ClassQhorn1, n, n).Hidden
		batched := session.New(oracle.Target(hidden))
		serial := session.New(oracle.Target(hidden))

		randomSet := func() boolean.Set {
			tuples := make([]boolean.Tuple, 1+rng.Intn(3))
			for i := range tuples {
				s := make([]byte, n)
				for j := range s {
					s[j] = byte('0' + rng.Intn(2))
				}
				tu, err := u.Parse(string(s))
				if err != nil {
					t.Fatal(err)
				}
				tuples[i] = tu
			}
			return boolean.NewSet(tuples...)
		}

		var pool []boolean.Set // questions eligible for repeats
		for round := 0; round < 5; round++ {
			batch := make([]boolean.Set, 0, 6)
			for len(batch) < 1+rng.Intn(6) {
				switch {
				case len(pool) > 0 && rng.Intn(3) == 0:
					batch = append(batch, pool[rng.Intn(len(pool))]) // repeat
				default:
					q := randomSet()
					batch = append(batch, q)
					pool = append(pool, q)
				}
			}
			got := batched.AskBatch(batch)
			want := make([]bool, len(batch))
			for i, q := range batch {
				want[i] = serial.Ask(q)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d round %d: AskBatch[%d]=%v, serial Ask=%v", trial, round, i, got[i], want[i])
				}
			}
		}
		sameEntries(t, "batched history", batched.Entries(), serial.Entries())
		if batched.LiveQuestions != serial.LiveQuestions {
			t.Fatalf("trial %d: AskBatch counted %d live questions, serial %d",
				trial, batched.LiveQuestions, serial.LiveQuestions)
		}
	}
}

// TestAmendEdgeCases pins the amendment edge semantics: unknown
// questions and out-of-range indices error without mutating, and a
// double amend flips the answer back while keeping the entry flagged.
func TestAmendEdgeCases(t *testing.T) {
	u, err := boolean.NewUniverse(3)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := u.Parse("101")
	if err != nil {
		t.Fatal(err)
	}
	asked := boolean.NewSet(tu)
	other, err := u.Parse("010")
	if err != nil {
		t.Fatal(err)
	}
	unknown := boolean.NewSet(other)

	s := session.New(oracle.Func(func(boolean.Set) bool { return true }))
	if got := s.Ask(asked); !got {
		t.Fatal("oracle answered false")
	}

	t.Run("unknown question", func(t *testing.T) {
		if err := s.AmendQuestion(unknown); err == nil {
			t.Fatal("amending a never-asked question succeeded")
		}
		sameAnswer(t, s, asked, true)
	})
	t.Run("index out of range", func(t *testing.T) {
		for _, i := range []int{-1, 1, 100} {
			if err := s.Amend(i); err == nil {
				t.Fatalf("Amend(%d) succeeded on a 1-entry history", i)
			}
		}
		sameAnswer(t, s, asked, true)
	})
	t.Run("double amend flips back", func(t *testing.T) {
		if err := s.Amend(0); err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, s, asked, false)
		if err := s.Amend(0); err != nil {
			t.Fatal(err)
		}
		sameAnswer(t, s, asked, true)
		if e := s.Entries()[0]; !e.Amended {
			t.Fatal("double-amended entry lost its Amended flag")
		}
	})
	t.Run("forget out of range", func(t *testing.T) {
		if err := s.Forget(-1); err == nil {
			t.Fatal("Forget(-1) succeeded")
		}
		if err := s.Forget(2); err == nil {
			t.Fatal("Forget past the history succeeded")
		}
	})
}

func sameAnswer(t *testing.T, s *session.Session, q boolean.Set, want bool) {
	t.Helper()
	if got := s.Ask(q); got != want {
		t.Fatalf("recorded answer %v, want %v", got, want)
	}
}
