// Package session implements the interaction-history mechanism the
// paper proposes for noisy users (§5): the system keeps a transcript
// of every membership question and the user's response; the user can
// review the history, flip a mistaken response, and the learning
// algorithm restarts "from the point of error" — replaying the
// corrected transcript and consulting the user only for questions the
// corrected run has not seen before.
//
// A Session wraps any oracle. Learners run against the session; after
// a run, Entries exposes the history, Amend flips a recorded
// response, and the next run replays amended history before asking
// the live oracle anything new.
//
// A Session is NOT concurrency-safe: its history maps serialize the
// amendment protocol, so it must never sit inside a worker pool
// (run.WithParallel). Engine runs over a session use run.WithBatch
// instead: the session is a BatchOracle whose AskBatch answers
// replayed questions from the history and forwards the remaining
// distinct questions to the user as one sub-batch, so a batch-capable
// user (a worker pool, or the qhornd answer exchange of
// internal/serve) sees whole batches while the session itself stays
// single-goroutine. Questions, recorded history and counts are
// identical to serial asking either way (see docs/ENGINE.md).
package session

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
)

// Entry is one question of the interaction history with the response
// on record.
type Entry struct {
	// Question is the membership question asked.
	Question boolean.Set
	// Answer is the response currently on record.
	Answer bool
	// Amended marks responses the user corrected after the fact.
	Amended bool
}

// Session is an oracle with a reviewable, amendable history. The zero
// value is unusable; create one with New.
type Session struct {
	user  oracle.Oracle
	order []string          // question keys in first-asked order
	byKey map[string]*Entry // history, keyed by canonical question
	// LiveQuestions counts questions forwarded to the user during the
	// current run (replayed questions are free).
	LiveQuestions int

	// AskBatch scratch, reused across rounds so a long adaptive run
	// (hundreds of batches against the qhornd exchange) allocates per
	// answer slice, not per bookkeeping pass. Safe because a Session
	// is single-goroutine by contract and no oracle wrapper retains
	// the sub-batch slice past AskAll.
	sub   []boolean.Set
	fill  []int
	inSub map[string]bool
}

// New returns a session over the user's oracle.
func New(user oracle.Oracle) *Session {
	return &Session{user: user, byKey: map[string]*Entry{}}
}

// Ask implements oracle.Oracle: repeated questions — including every
// question replayed after an amendment — are answered from the
// history; new questions go to the user and are recorded.
func (s *Session) Ask(q boolean.Set) bool {
	key := q.Key()
	if e, ok := s.byKey[key]; ok {
		return e.Answer
	}
	a := s.user.Ask(q)
	s.LiveQuestions++
	s.byKey[key] = &Entry{Question: q, Answer: a}
	s.order = append(s.order, key)
	return a
}

// AskBatch implements oracle.BatchOracle: questions already on record
// — including intra-batch repeats — are answered from the history;
// the remaining distinct questions are forwarded to the user as one
// sub-batch in first-occurrence order and recorded. The answers, the
// recorded history order and LiveQuestions are identical to asking
// the batch serially through Ask; only the user-side asking may
// overlap in time when the user is itself a BatchOracle. The session
// must still be driven from a single goroutine.
func (s *Session) AskBatch(qs []boolean.Set) []bool {
	answers := make([]bool, len(qs))
	sub := s.sub[:0]
	fill := s.fill[:0]
	if s.inSub == nil {
		s.inSub = map[string]bool{}
	}
	for i, q := range qs {
		key := q.Key()
		if e, ok := s.byKey[key]; ok {
			answers[i] = e.Answer
			continue
		}
		fill = append(fill, i)
		if !s.inSub[key] {
			s.inSub[key] = true
			sub = append(sub, q)
		}
	}
	s.sub, s.fill = sub, fill
	clear(s.inSub)
	if len(sub) == 0 {
		return answers
	}
	res := oracle.AskAll(s.user, sub)
	for j, q := range sub {
		key := q.Key()
		s.LiveQuestions++
		s.byKey[key] = &Entry{Question: q, Answer: res[j]}
		s.order = append(s.order, key)
	}
	for _, i := range fill {
		answers[i] = s.byKey[qs[i].Key()].Answer
	}
	return answers
}

// Entries returns the history in first-asked order.
func (s *Session) Entries() []Entry {
	out := make([]Entry, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, *s.byKey[k])
	}
	return out
}

// Len returns the number of distinct questions on record.
func (s *Session) Len() int { return len(s.order) }

// Amend flips the recorded response of history entry i (0-based,
// first-asked order). The next learning run replays the corrected
// history. It returns an error if i is out of range.
func (s *Session) Amend(i int) error {
	if i < 0 || i >= len(s.order) {
		return fmt.Errorf("session: no history entry %d (have %d)", i, len(s.order))
	}
	e := s.byKey[s.order[i]]
	e.Answer = !e.Answer
	e.Amended = true
	return nil
}

// AmendQuestion flips the recorded response for the given question.
func (s *Session) AmendQuestion(q boolean.Set) error {
	e, ok := s.byKey[q.Key()]
	if !ok {
		return fmt.Errorf("session: question %v not in history", q.Tuples())
	}
	e.Answer = !e.Answer
	e.Amended = true
	return nil
}

// ResetRun clears the live-question counter before a re-run; the
// history itself is kept so the corrected responses replay for free.
func (s *Session) ResetRun() { s.LiveQuestions = 0 }

// Forget drops every history entry from i onward, forcing the next
// run to re-ask them. Use when the user distrusts everything after
// the point of error rather than a single response.
func (s *Session) Forget(i int) error {
	if i < 0 || i > len(s.order) {
		return fmt.Errorf("session: no history entry %d (have %d)", i, len(s.order))
	}
	for _, k := range s.order[i:] {
		delete(s.byKey, k)
	}
	s.order = s.order[:i]
	return nil
}

// InconsistentWith returns the history indices whose recorded answers
// disagree with the given query — the "review your answers" list a
// query interface shows when verification fails. Flipping exactly
// these entries makes the history consistent with q.
func (s *Session) InconsistentWith(ask func(boolean.Set) bool) []int {
	var out []int
	for i, k := range s.order {
		e := s.byKey[k]
		if ask(e.Question) != e.Answer {
			out = append(out, i)
		}
	}
	return out
}

// AmendAll flips every listed history entry; the next run replays the
// corrections.
func (s *Session) AmendAll(indices []int) error {
	for _, i := range indices {
		if err := s.Amend(i); err != nil {
			return err
		}
	}
	s.ResetRun()
	return nil
}
