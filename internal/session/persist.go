package session

import (
	"encoding/json"
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
)

// Persistence: a session's interaction history can be saved and
// restored, so a user can close the interface mid-specification and
// resume later — the recorded answers replay without re-asking.

// savedEntry is the wire form of one history entry.
type savedEntry struct {
	Question []string `json:"question"`
	Answer   bool     `json:"answer"`
	Amended  bool     `json:"amended,omitempty"`
}

type savedSession struct {
	Variables int          `json:"variables"`
	Entries   []savedEntry `json:"entries"`
}

// EncodeJSON serializes the history (in first-asked order) together
// with the universe width needed to re-parse the tuples.
func (s *Session) EncodeJSON(u boolean.Universe) ([]byte, error) {
	out := savedSession{Variables: u.N()}
	for _, k := range s.order {
		e := s.byKey[k]
		se := savedEntry{Answer: e.Answer, Amended: e.Amended}
		for _, t := range e.Question.Tuples() {
			se.Question = append(se.Question, u.Format(t))
		}
		out.Entries = append(out.Entries, se)
	}
	return json.MarshalIndent(out, "", "  ")
}

// DecodeJSON restores a session over the given live oracle: the saved
// answers replay for free; only questions beyond the history reach
// the user. It returns the universe recorded in the snapshot.
func DecodeJSON(data []byte, user oracle.Oracle) (*Session, boolean.Universe, error) {
	var in savedSession
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, boolean.Universe{}, err
	}
	u, err := boolean.NewUniverse(in.Variables)
	if err != nil {
		return nil, boolean.Universe{}, err
	}
	s := New(user)
	for i, se := range in.Entries {
		var tuples []boolean.Tuple
		for _, ts := range se.Question {
			t, err := u.Parse(ts)
			if err != nil {
				return nil, boolean.Universe{}, fmt.Errorf("session: entry %d: %w", i, err)
			}
			tuples = append(tuples, t)
		}
		q := boolean.NewSet(tuples...)
		key := q.Key()
		if _, dup := s.byKey[key]; dup {
			return nil, boolean.Universe{}, fmt.Errorf("session: entry %d duplicates an earlier question", i)
		}
		s.byKey[key] = &Entry{Question: q, Answer: se.Answer, Amended: se.Amended}
		s.order = append(s.order, key)
	}
	return s, u, nil
}
