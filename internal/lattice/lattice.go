// Package lattice implements the Boolean lattice machinery of §3.2
// of the qhorn paper (Fig. 4): the partial order of Boolean tuples
// under variable containment, restricted sub-lattices over a subset of
// free variables, level enumeration, children/parents, and paths.
//
// The role-preserving learners search this lattice top-to-bottom for
// "distinguishing tuples": the inflection points where the user's
// answers flip from answer to non-answer (universal expressions) or
// vice versa (existential conjunctions).
package lattice

import (
	"fmt"
	"sort"

	"qhorn/internal/boolean"
)

// Lattice is the Boolean lattice over a set of free variables, with
// the remaining variables of the universe pinned to fixed values. The
// learners use two instances:
//
//   - learning universal Horn bodies for head h (§3.2.1): free
//     variables are the non-head variables, h is pinned false, other
//     head variables pinned true (Fig. 5);
//   - learning existential conjunctions (§3.2.2): every variable is
//     free.
//
// A point of the lattice is represented as a full boolean.Tuple over
// the universe, always satisfying t = pinnedTrue ∪ (t ∩ free).
type Lattice struct {
	universe boolean.Universe
	free     boolean.Tuple // variables that vary
	pinned   boolean.Tuple // fixed true values among non-free variables
}

// New returns the lattice over the given free variables with the
// remaining variables fixed: those in pinnedTrue are true, all other
// non-free variables are false. It returns an error if pinnedTrue
// overlaps free or escapes the universe.
func New(u boolean.Universe, free, pinnedTrue boolean.Tuple) (*Lattice, error) {
	if !u.Contains(free) || !u.Contains(pinnedTrue) {
		return nil, fmt.Errorf("lattice: variables outside universe of %d variables", u.N())
	}
	if free.Intersects(pinnedTrue) {
		return nil, fmt.Errorf("lattice: pinned variables %v overlap free variables %v", pinnedTrue, free)
	}
	return &Lattice{universe: u, free: free, pinned: pinnedTrue}, nil
}

// Full returns the unrestricted lattice on all variables of the
// universe, used for learning existential conjunctions.
func Full(u boolean.Universe) *Lattice {
	l, err := New(u, u.All(), 0)
	if err != nil {
		panic(err) // unreachable: all/none cannot conflict
	}
	return l
}

// Universe returns the underlying universe.
func (l *Lattice) Universe() boolean.Universe { return l.universe }

// Free returns the set of free variables.
func (l *Lattice) Free() boolean.Tuple { return l.free }

// Top returns the top of the lattice: all free variables true plus the
// pinned-true variables.
func (l *Lattice) Top() boolean.Tuple { return l.free.Union(l.pinned) }

// Bottom returns the bottom of the lattice: all free variables false.
func (l *Lattice) Bottom() boolean.Tuple { return l.pinned }

// Contains reports whether t is a point of this lattice: it agrees
// with the pinned values outside the free variables.
func (l *Lattice) Contains(t boolean.Tuple) bool {
	return t.Minus(l.free) == l.pinned
}

// Level returns the level of t in the lattice: the number of free
// variables that are false (level 0 is the top, Fig. 4).
func (l *Lattice) Level(t boolean.Tuple) int {
	return l.free.Minus(t).Count()
}

// Levels returns the number of levels, |free|+1.
func (l *Lattice) Levels() int { return l.free.Count() + 1 }

// Children returns the tuples obtained from t by setting exactly one
// of its true free variables to false, in ascending variable order.
// Tuples at level l have out-degree |free|−l (Fig. 4).
func (l *Lattice) Children(t boolean.Tuple) []boolean.Tuple {
	trueFree := t.Intersect(l.free)
	out := make([]boolean.Tuple, 0, trueFree.Count())
	for _, v := range trueFree.Vars() {
		out = append(out, t.Without(v))
	}
	return out
}

// Parents returns the tuples obtained from t by setting exactly one of
// its false free variables to true. Tuples at level l have in-degree
// l (Fig. 4).
func (l *Lattice) Parents(t boolean.Tuple) []boolean.Tuple {
	falseFree := l.free.Minus(t)
	out := make([]boolean.Tuple, 0, falseFree.Count())
	for _, v := range falseFree.Vars() {
		out = append(out, t.With(v))
	}
	return out
}

// AtLevel enumerates all tuples at the given level (exactly level free
// variables false). It is exponential in |free| and intended for small
// lattices (tests, the Fig 7/8 experiments, and the verifier's A4
// question at level 1).
func (l *Lattice) AtLevel(level int) []boolean.Tuple {
	vars := l.free.Vars()
	n := len(vars)
	if level < 0 || level > n {
		return nil
	}
	var out []boolean.Tuple
	// Choose which `level` free variables are false.
	choose := make([]int, 0, level)
	var rec func(start int)
	rec = func(start int) {
		if len(choose) == level {
			t := l.Top()
			for _, v := range choose {
				t = t.Without(v)
			}
			out = append(out, t)
			return
		}
		for i := start; i < n; i++ {
			choose = append(choose, vars[i])
			rec(i + 1)
			choose = choose[:len(choose)-1]
		}
	}
	rec(0)
	return out
}

// Path returns the sequence of free variables to set false to walk
// from tuple from down to tuple to, or ok=false if to is not in the
// downset of from within this lattice. This is the paper's notion of a
// path between two tuples (proof of Theorem 3.7).
func (l *Lattice) Path(from, to boolean.Tuple) (vars []int, ok bool) {
	if !l.Contains(from) || !l.Contains(to) {
		return nil, false
	}
	if !from.Contains(to) {
		return nil, false
	}
	return from.Minus(to).Intersect(l.free).Vars(), true
}

// Upset enumerates every lattice point ⊇ t (including t itself), in
// ascending bitset order. Membership questions built from the upset
// of a universal distinguishing tuple are non-answers (§3.2.1). The
// enumeration is exponential in the number of free variables above t;
// it panics past 2^20 points.
func (l *Lattice) Upset(t boolean.Tuple) []boolean.Tuple {
	if !l.Contains(t) {
		return nil
	}
	raisable := l.free.Minus(t)
	if raisable.Count() > 20 {
		panic("lattice: Upset enumeration past 2^20 points")
	}
	out := make([]boolean.Tuple, 0, 1<<uint(raisable.Count()))
	for _, m := range submasks(raisable) {
		out = append(out, t.Union(m))
	}
	sortTuples(out)
	return out
}

// Downset enumerates every lattice point ⊆ t (including t itself), in
// ascending bitset order. Questions built from the downset of a
// universal distinguishing tuple are answers (§3.2.1). It panics past
// 2^20 points.
func (l *Lattice) Downset(t boolean.Tuple) []boolean.Tuple {
	if !l.Contains(t) {
		return nil
	}
	lowerable := t.Intersect(l.free)
	if lowerable.Count() > 20 {
		panic("lattice: Downset enumeration past 2^20 points")
	}
	out := make([]boolean.Tuple, 0, 1<<uint(lowerable.Count()))
	for _, m := range submasks(lowerable) {
		out = append(out, t.Minus(m))
	}
	sortTuples(out)
	return out
}

// submasks enumerates every subset of the set bits of m ascending.
func submasks(m boolean.Tuple) []boolean.Tuple {
	var out []boolean.Tuple
	s := boolean.Tuple(0)
	for {
		out = append(out, s)
		if s == m {
			return out
		}
		s = (s - m) & m
	}
}

func sortTuples(ts []boolean.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}

// Size returns the number of points in the lattice, 2^|free|. It
// saturates at the maximum int for |free| >= 63.
func (l *Lattice) Size() int {
	f := l.free.Count()
	if f >= 63 {
		return int(^uint(0) >> 1)
	}
	return 1 << uint(f)
}
