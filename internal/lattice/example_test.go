package lattice_test

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/lattice"
)

func Example() {
	// The Fig 5 lattice: learning bodies for head x5 with heads
	// {x5, x6} — free variables x1..x4, x6 pinned true, x5 false.
	u := boolean.MustUniverse(6)
	l, err := lattice.New(u, boolean.FromVars(0, 1, 2, 3), boolean.FromVars(5))
	if err != nil {
		panic(err)
	}
	fmt.Println("top:   ", u.Format(l.Top()))
	fmt.Println("bottom:", u.Format(l.Bottom()))
	for _, c := range l.Children(u.MustParse("100101")) {
		fmt.Println("child: ", u.Format(c))
	}
	// Output:
	// top:    111101
	// bottom: 000001
	// child:  000101
	// child:  100001
}
