package lattice

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

func mustParseQuery(t *testing.T, u boolean.Universe, s string) query.Query {
	t.Helper()
	return query.MustParse(u, s)
}

func mustNew(t *testing.T, u boolean.Universe, free, pinned boolean.Tuple) *Lattice {
	t.Helper()
	l, err := New(u, free, pinned)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFullLatticeFig4(t *testing.T) {
	// Fig. 4: the Boolean lattice on four variables.
	u := boolean.MustUniverse(4)
	l := Full(u)
	if l.Top() != u.All() {
		t.Fatalf("Top = %s", u.Format(l.Top()))
	}
	if l.Bottom() != boolean.Empty {
		t.Fatalf("Bottom = %s", u.Format(l.Bottom()))
	}
	if l.Levels() != 5 {
		t.Fatalf("Levels = %d, want n+1 = 5", l.Levels())
	}
	if l.Size() != 16 {
		t.Fatalf("Size = %d", l.Size())
	}
	// Tuple 0011 (x3,x4 true) is at level 2 with out-degree 2 and
	// in-degree 2.
	tp := u.MustParse("0011")
	if got := l.Level(tp); got != 2 {
		t.Fatalf("Level(0011) = %d", got)
	}
	if got := len(l.Children(tp)); got != 2 {
		t.Fatalf("out-degree = %d", got)
	}
	if got := len(l.Parents(tp)); got != 2 {
		t.Fatalf("in-degree = %d", got)
	}
}

func TestChildrenParents(t *testing.T) {
	u := boolean.MustUniverse(4)
	l := Full(u)
	tp := u.MustParse("1101")
	kids := l.Children(tp)
	want := map[string]bool{"0101": true, "1001": true, "1100": true}
	if len(kids) != len(want) {
		t.Fatalf("children = %d", len(kids))
	}
	for _, k := range kids {
		if !want[u.Format(k)] {
			t.Fatalf("unexpected child %s", u.Format(k))
		}
		if l.Level(k) != l.Level(tp)+1 {
			t.Fatalf("child level wrong")
		}
	}
	parents := l.Parents(tp)
	if len(parents) != 1 || u.Format(parents[0]) != "1111" {
		t.Fatalf("parents of 1101 = %v", parents)
	}
}

func TestRestrictedLatticeFig5(t *testing.T) {
	// Fig. 5: learning bodies for head x5 in a 6-variable query with
	// heads {x5, x6}. Free variables are the non-heads x1..x4; x6 is
	// pinned true; x5 is pinned false.
	u := boolean.MustUniverse(6)
	free := boolean.FromVars(0, 1, 2, 3)
	pinned := boolean.FromVars(5) // x6 true
	l := mustNew(t, u, free, pinned)

	if got := u.Format(l.Top()); got != "111101" {
		t.Fatalf("Top = %s, want 111101", got)
	}
	if got := u.Format(l.Bottom()); got != "000001" {
		t.Fatalf("Bottom = %s, want 000001", got)
	}
	if !l.Contains(u.MustParse("100101")) {
		t.Fatal("distinguishing tuple 100101 should be in lattice")
	}
	if l.Contains(u.MustParse("100111")) {
		t.Fatal("tuple with x5 true must not be in lattice")
	}
	if l.Contains(u.MustParse("100100")) {
		t.Fatal("tuple with x6 false must not be in lattice")
	}
	// Level-1 search roots from the paper: 011101 101101 110101 111001.
	lvl1 := l.AtLevel(1)
	want := map[string]bool{"011101": true, "101101": true, "110101": true, "111001": true}
	if len(lvl1) != 4 {
		t.Fatalf("level 1 size = %d", len(lvl1))
	}
	for _, tp := range lvl1 {
		if !want[u.Format(tp)] {
			t.Fatalf("unexpected level-1 tuple %s", u.Format(tp))
		}
	}
}

func TestNewErrors(t *testing.T) {
	u := boolean.MustUniverse(3)
	if _, err := New(u, boolean.FromVars(0, 1), boolean.FromVars(1)); err == nil {
		t.Error("overlapping pinned/free accepted")
	}
	if _, err := New(u, boolean.FromVars(5), 0); err == nil {
		t.Error("free variable outside universe accepted")
	}
	if _, err := New(u, 0, boolean.FromVars(4)); err == nil {
		t.Error("pinned variable outside universe accepted")
	}
}

func TestAtLevelCounts(t *testing.T) {
	u := boolean.MustUniverse(5)
	l := Full(u)
	// Binomial coefficients C(5, level).
	want := []int{1, 5, 10, 10, 5, 1}
	total := 0
	for level, w := range want {
		got := l.AtLevel(level)
		if len(got) != w {
			t.Fatalf("level %d: %d tuples, want %d", level, len(got), w)
		}
		for _, tp := range got {
			if l.Level(tp) != level {
				t.Fatalf("tuple %s at wrong level", u.Format(tp))
			}
		}
		total += len(got)
	}
	if total != l.Size() {
		t.Fatalf("levels cover %d of %d points", total, l.Size())
	}
	if got := l.AtLevel(-1); got != nil {
		t.Fatal("negative level returned tuples")
	}
	if got := l.AtLevel(6); got != nil {
		t.Fatal("overflow level returned tuples")
	}
}

func TestPath(t *testing.T) {
	u := boolean.MustUniverse(6)
	l := Full(u)
	from := u.MustParse("111011")
	to := u.MustParse("110011")
	vars, ok := l.Path(from, to)
	if !ok || len(vars) != 1 || vars[0] != 2 {
		t.Fatalf("Path = %v, %v", vars, ok)
	}
	if _, ok := l.Path(to, from); ok {
		t.Fatal("upward path reported")
	}
	if _, ok := l.Path(u.MustParse("110000"), u.MustParse("001100")); ok {
		t.Fatal("incomparable path reported")
	}
	// Path within a restricted lattice ignores pinned variables.
	lr := mustNew(t, u, boolean.FromVars(0, 1, 2, 3), boolean.FromVars(5))
	vars, ok = lr.Path(u.MustParse("111101"), u.MustParse("100101"))
	if !ok || len(vars) != 2 {
		t.Fatalf("restricted Path = %v, %v", vars, ok)
	}
}

func TestChildParentInverse(t *testing.T) {
	u := boolean.MustUniverse(8)
	l := Full(u)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		tp := boolean.Tuple(rng.Intn(256))
		for _, c := range l.Children(tp) {
			found := false
			for _, p := range l.Parents(c) {
				if p == tp {
					found = true
				}
			}
			if !found {
				t.Fatalf("parent/child not inverse for %s", u.Format(tp))
			}
			if !tp.Contains(c) || c.Count() != tp.Count()-1 {
				t.Fatalf("child %s not covered by %s", u.Format(c), u.Format(tp))
			}
		}
	}
}

func TestSizeSaturates(t *testing.T) {
	u := boolean.MustUniverse(64)
	l := Full(u)
	if l.Size() <= 0 {
		t.Fatalf("Size overflowed: %d", l.Size())
	}
}

func TestUpsetDownsetEnumeration(t *testing.T) {
	u := boolean.MustUniverse(4)
	l := Full(u)
	tp := u.MustParse("0011")
	up := l.Upset(tp)
	down := l.Downset(tp)
	// |upset| = 2^(false vars) = 4, |downset| = 2^(true vars) = 4.
	if len(up) != 4 || len(down) != 4 {
		t.Fatalf("upset %d, downset %d", len(up), len(down))
	}
	for _, x := range up {
		if !x.InUpset(tp) {
			t.Fatalf("%s not in upset", u.Format(x))
		}
	}
	for _, x := range down {
		if !x.InDownset(tp) {
			t.Fatalf("%s not in downset", u.Format(x))
		}
	}
	// Upset ∩ downset = {t}.
	common := 0
	for _, a := range up {
		for _, b := range down {
			if a == b {
				common++
			}
		}
	}
	if common != 1 {
		t.Fatalf("upset ∩ downset has %d points", common)
	}
	// The union of upset sizes over a level partitions correctly:
	// |upset(t)| + |downset(t)| - 1 ≤ size.
	if len(up)+len(down)-1 > l.Size() {
		t.Fatal("upset/downset overflow lattice")
	}
	// Restricted lattice: pinned variables never vary.
	lr, err := New(u, boolean.FromVars(0, 1), boolean.FromVars(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range lr.Upset(u.MustParse("1001")) {
		if !lr.Contains(x) {
			t.Fatalf("upset left the lattice: %s", u.Format(x))
		}
	}
	// Points outside the lattice enumerate nothing.
	if got := lr.Upset(u.MustParse("1111")); got != nil {
		t.Fatalf("foreign point enumerated: %v", got)
	}
	if got := lr.Downset(u.MustParse("0000")); got != nil {
		t.Fatalf("foreign point enumerated: %v", got)
	}
}

func TestUpsetDownsetMatchPaperInflections(t *testing.T) {
	// §3.2.1: questions from the upset of a universal distinguishing
	// tuple are non-answers; from the strict downset, answers.
	u := boolean.MustUniverse(4)
	q := mustParseQuery(t, u, "∀x1x2 → x3 ∃x4")
	l, err := New(u, boolean.FromVars(0, 1, 3), 0) // free: non-heads; x3 pinned false
	if err != nil {
		t.Fatal(err)
	}
	tg := u.MustParse("1100") // distinguishing tuple: body true, head false
	for _, x := range l.Upset(tg) {
		if !q.Violates(x) {
			t.Fatalf("upset point %s does not violate", u.Format(x))
		}
	}
	for _, x := range l.Downset(tg) {
		if x != tg && q.Violates(x) {
			t.Fatalf("downset point %s violates", u.Format(x))
		}
	}
}
