module qhorn

go 1.22
