package qhorn_test

// Facade tests for the composable run engine surface: Learn / VerifyQ
// and every re-exported option (docs/ENGINE.md). The named LearnXxx /
// VerifyXxx wrappers are pinned to the engine in their own packages'
// options-matrix tests; here the facade's option path is exercised
// end to end.

import (
	"math/rand"
	"testing"

	"qhorn"
)

func engineFixture(t *testing.T) (qhorn.Universe, qhorn.Query) {
	t.Helper()
	u := qhorn.MustUniverse(4)
	return u, qhorn.MustParseQuery(u, "∀x1 → x2 ∃x3x4")
}

// TestLearnDefaults: no options learns qhorn-1 serially.
func TestLearnDefaults(t *testing.T) {
	u, intended := engineFixture(t)
	q, stats := qhorn.Learn(u, qhorn.TargetOracle(intended))
	if !q.Equivalent(intended) {
		t.Errorf("learned %s, want ≡ %s", q, intended)
	}
	if stats.Total() == 0 {
		t.Error("no questions counted")
	}
}

// TestLearnOptionsCompose: algorithm, parallelism, budget, memo,
// steps and instrumentation compose on one call and still learn
// exactly.
func TestLearnOptionsCompose(t *testing.T) {
	u, intended := engineFixture(t)
	serialQ, serialStats := qhorn.Learn(u, qhorn.TargetOracle(intended),
		qhorn.WithAlgorithm(qhorn.AlgorithmRolePreserving))

	var steps int
	reg := qhorn.NewMetricsRegistry()
	q, stats := qhorn.Learn(u, qhorn.TargetOracle(intended),
		qhorn.WithAlgorithm(qhorn.AlgorithmRolePreserving),
		qhorn.WithParallel(2),
		qhorn.WithBudget(serialStats.Total()),
		qhorn.WithMemo(),
		qhorn.WithSteps(func(qhorn.TraceStep) { steps++ }),
		qhorn.WithInstrumentation(qhorn.Instrumentation{Metrics: reg}))
	if !q.Equivalent(serialQ) {
		t.Errorf("optioned run learned %s, serial learned %s", q, serialQ)
	}
	if stats != serialStats {
		t.Errorf("optioned stats %+v, serial %+v", stats, serialStats)
	}
	if steps != stats.Total() {
		t.Errorf("step tracer saw %d questions, stats count %d", steps, stats.Total())
	}
}

// TestLearnNaiveAndBatch: the naive baseline and the bare batch
// structure also learn exactly.
func TestLearnNaiveAndBatch(t *testing.T) {
	u, intended := engineFixture(t)
	q, _ := qhorn.Learn(u, qhorn.TargetOracle(intended), qhorn.WithNaiveSearch())
	if !q.Equivalent(intended) {
		t.Errorf("naive learned %s", q)
	}
	q, _ = qhorn.Learn(u, qhorn.TargetOracle(intended), qhorn.WithBatch())
	if !q.Equivalent(intended) {
		t.Errorf("batch learned %s", q)
	}
}

// TestLearnAblated: ablations cost questions, never exactness.
func TestLearnAblated(t *testing.T) {
	u, intended := engineFixture(t)
	q, _ := qhorn.Learn(u, qhorn.TargetOracle(intended),
		qhorn.WithAlgorithm(qhorn.AlgorithmRolePreserving),
		qhorn.WithAblations(qhorn.Ablations{NoGuaranteeSeeds: true, SerialPrune: true}))
	if !q.Equivalent(intended) {
		t.Errorf("ablated run learned %s", q)
	}
}

// TestLearnWithNoise: a fully lying user (p=1) derails learning — the
// option demonstrably reaches the oracle stack.
func TestLearnWithNoise(t *testing.T) {
	u, intended := engineFixture(t)
	rng := rand.New(rand.NewSource(1))
	q, _ := qhorn.Learn(u, qhorn.TargetOracle(intended),
		qhorn.WithAlgorithm(qhorn.AlgorithmRolePreserving),
		qhorn.WithNoise(1, rng))
	if q.Equivalent(intended) {
		t.Error("learning from an always-lying user still matched the intent")
	}
}

// TestVerifyQ: the engine verify entry point agrees with Verify and
// honors WithFirstDisagreement.
func TestVerifyQ(t *testing.T) {
	u, intended := engineFixture(t)
	res, err := qhorn.VerifyQ(intended, qhorn.TargetOracle(intended))
	if err != nil || !res.Correct {
		t.Fatalf("VerifyQ on the intent: %+v, %v", res, err)
	}

	wrong := qhorn.MustParseQuery(u, "∀x1 → x3 ∃x3x4")
	full, err := qhorn.VerifyQ(wrong, qhorn.TargetOracle(intended))
	if err != nil || full.Correct {
		t.Fatalf("VerifyQ on a wrong query: %+v, %v", full, err)
	}
	first, err := qhorn.VerifyQ(wrong, qhorn.TargetOracle(intended), qhorn.WithFirstDisagreement())
	if err != nil || first.Correct {
		t.Fatalf("first-only verify: %+v, %v", first, err)
	}
	if len(first.Disagreements) != 1 {
		t.Errorf("first-only found %d disagreements, want 1", len(first.Disagreements))
	}
	if first.QuestionsAsked > full.QuestionsAsked {
		t.Errorf("first-only asked %d questions, full set is %d", first.QuestionsAsked, full.QuestionsAsked)
	}
	notRP := qhorn.MustParseQuery(u, "∀x1 → x2 ∀x2 → x3")
	if _, err := qhorn.VerifyQ(notRP, qhorn.TargetOracle(intended)); err == nil {
		t.Error("VerifyQ accepted a non-role-preserving query")
	}

	par, err := qhorn.VerifyQ(wrong, qhorn.TargetOracle(intended), qhorn.WithParallel(2))
	if err != nil || par.Correct != full.Correct || par.QuestionsAsked != full.QuestionsAsked {
		t.Errorf("parallel verify %+v differs from serial %+v (err %v)", par, full, err)
	}
}

// TestParseAlgorithm covers the facade spelling round trip.
func TestParseAlgorithm(t *testing.T) {
	a, err := qhorn.ParseAlgorithm("rp")
	if err != nil || a != qhorn.AlgorithmRolePreserving {
		t.Errorf("ParseAlgorithm(rp) = %v, %v", a, err)
	}
	a, err = qhorn.ParseAlgorithm("qhorn1")
	if err != nil || a != qhorn.AlgorithmQhorn1 {
		t.Errorf("ParseAlgorithm(qhorn1) = %v, %v", a, err)
	}
	if _, err := qhorn.ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm accepted garbage")
	}
}

// TestParseSet covers the facade's set parser.
func TestParseSet(t *testing.T) {
	u := qhorn.MustUniverse(3)
	s, err := qhorn.ParseSet(u, "{110, 001}")
	if err != nil || s.Size() != 2 {
		t.Errorf("ParseSet = %v, %v", s, err)
	}
	if _, err := qhorn.ParseSet(u, "{1111}"); err == nil {
		t.Error("ParseSet accepted a tuple wider than the universe")
	}
}
