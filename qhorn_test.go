package qhorn_test

import (
	"fmt"
	"math/rand"
	"testing"

	"qhorn"
)

func TestFacadeLearnQhorn1(t *testing.T) {
	u := qhorn.MustUniverse(6)
	target := qhorn.MustParseQuery(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	learned, stats := qhorn.LearnQhorn1(u, qhorn.TargetOracle(target))
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s, want %s", learned, target)
	}
	if stats.Total() == 0 {
		t.Fatal("no questions counted")
	}
}

func TestFacadeLearnRolePreserving(t *testing.T) {
	u := qhorn.MustUniverse(6)
	target := qhorn.MustParseQuery(u, "∀x1x4 → x5 ∀x3x4 → x5 ∃x1x2x3")
	learned, stats := qhorn.LearnRolePreserving(u, qhorn.TargetOracle(target))
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s, want %s", learned, target)
	}
	if stats.UniversalQuestions == 0 || stats.ExistentialQuestions == 0 {
		t.Fatalf("stats incomplete: %+v", stats)
	}
}

func TestFacadeVerify(t *testing.T) {
	u := qhorn.MustUniverse(4)
	given := qhorn.MustParseQuery(u, "∀x1 → x2 ∃x3x4")
	res, err := qhorn.Verify(given, qhorn.TargetOracle(given))
	if err != nil || !res.Correct {
		t.Fatalf("self-verification failed: %v %+v", err, res)
	}
	other := qhorn.MustParseQuery(u, "∀x1 → x3 ∃x2x4")
	res, err = qhorn.Verify(given, qhorn.TargetOracle(other))
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct {
		t.Fatal("different intended query not detected")
	}
}

func TestFacadeConstructors(t *testing.T) {
	u := qhorn.MustUniverse(4)
	q, err := qhorn.NewQuery(u,
		qhorn.UniversalHorn(qhorn.Vars(0, 1), 2),
		qhorn.BodylessUniversal(3),
		qhorn.Conjunction(qhorn.Vars(0, 3)),
	)
	if err != nil {
		t.Fatal(err)
	}
	parsed := qhorn.MustParseQuery(u, "∀x1x2 → x3 ∀x4 ∃x1x4")
	if !q.Equal(parsed) {
		t.Fatalf("constructed %s, parsed %s", q, parsed)
	}
	if _, err := qhorn.NewQuery(u, qhorn.ExistentialHorn(qhorn.Vars(0), 0)); err == nil {
		t.Fatal("head-in-body accepted")
	}
}

func TestFacadeOracles(t *testing.T) {
	u := qhorn.MustUniverse(4)
	target := qhorn.MustParseQuery(u, "∃x1x2")
	c := qhorn.CountingOracle(qhorn.TargetOracle(target))
	r := qhorn.RecordingOracle(c)
	// ∃x1x2 leaves x3, x4 unquantified, which qhorn-1 forbids; the
	// role-preserving learner handles it.
	learned, _ := qhorn.LearnRolePreserving(u, r)
	if !learned.Equivalent(target) {
		t.Fatal("learning through wrappers failed")
	}
	if c.Questions == 0 || len(r.Entries) != c.Questions {
		t.Fatalf("wrappers out of sync: %d vs %d", c.Questions, len(r.Entries))
	}
	rng := rand.New(rand.NewSource(1))
	noisy := qhorn.NoisyOracle(qhorn.TargetOracle(target), 1.0, rng)
	if noisy.Ask(qhorn.Set{}) == target.Eval(qhorn.Set{}) {
		t.Fatal("p=1 noise did not flip")
	}
}

func TestFacadeGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if q := qhorn.GenQhorn1(rng, 8); !q.IsQhorn1() {
		t.Fatal("GenQhorn1 broken")
	}
	q := qhorn.GenRolePreserving(rng, 8, qhorn.RPOptions{Heads: 2, BodiesPerHead: 1, MaxBodySize: 2, Conjs: 2, MaxConjSize: 3})
	if !q.IsRolePreserving() {
		t.Fatal("GenRolePreserving broken")
	}
}

// Example demonstrates the paper's core loop: simulate a user, learn
// her query, then verify it.
func Example() {
	u := qhorn.MustUniverse(4)
	intended := qhorn.MustParseQuery(u, "∀x1 → x2 ∃x3x4")
	user := qhorn.TargetOracle(intended)

	learned, stats := qhorn.LearnRolePreserving(u, user)
	fmt.Println("learned:", learned)
	fmt.Println("equivalent:", learned.Equivalent(intended))

	res, _ := qhorn.Verify(learned, user)
	fmt.Println("verified:", res.Correct, "with", res.QuestionsAsked, "questions")
	fmt.Println("learning questions:", stats.Total() > res.QuestionsAsked)
	// Output:
	// learned: ∀x1 → x2 ∃x1x2 ∃x3x4
	// equivalent: true
	// verified: true with 6 questions
	// learning questions: true
}

func TestFacadeRevise(t *testing.T) {
	u := qhorn.MustUniverse(6)
	given := qhorn.MustParseQuery(u, "∀x1x4 → x5 ∃x2x3")
	intended := qhorn.MustParseQuery(u, "∀x1x4 → x5 ∃x2x3 ∃x2x6")
	res, err := qhorn.Revise(given, qhorn.TargetOracle(intended))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Revised.Equivalent(intended) {
		t.Fatalf("revised to %s", res.Revised)
	}
	if qhorn.QueryDistance(given, intended) == 0 {
		t.Fatal("distance of different queries is zero")
	}
	if qhorn.QueryDistance(intended, intended) != 0 {
		t.Fatal("self-distance nonzero")
	}
}

func TestFacadeSession(t *testing.T) {
	u := qhorn.MustUniverse(4)
	target := qhorn.MustParseQuery(u, "∀x1 → x2 ∃x3x4")
	s := qhorn.NewSession(qhorn.TargetOracle(target))
	learned, _ := qhorn.LearnRolePreserving(u, s)
	if !learned.Equivalent(target) {
		t.Fatal("learning through session failed")
	}
	if s.Len() == 0 || s.LiveQuestions != s.Len() {
		t.Fatalf("session history: len=%d live=%d", s.Len(), s.LiveQuestions)
	}
	// Re-run replays entirely from history.
	s.ResetRun()
	again, _ := qhorn.LearnRolePreserving(u, s)
	if !again.Equivalent(target) || s.LiveQuestions != 0 {
		t.Fatalf("replay run asked %d live questions", s.LiveQuestions)
	}
}

func TestFacadePAC(t *testing.T) {
	u := qhorn.MustUniverse(5)
	target := qhorn.MustParseQuery(u, "∀x1 → x2 ∃x3x4")
	rng := rand.New(rand.NewSource(3))
	sampler := qhorn.NewBoundarySampler(target, rng, 2)
	h, stats := qhorn.LearnPAC(u, qhorn.TargetOracle(target), sampler, 300, qhorn.PACParams{})
	if stats.Positives == 0 {
		t.Fatal("no positives sampled")
	}
	test := qhorn.NewBoundarySampler(target, rand.New(rand.NewSource(4)), 2)
	if err := qhorn.PACError(h, target, test, 1000); err > 0.15 {
		t.Fatalf("PAC error %.3f", err)
	}
}

func TestFacadeTracing(t *testing.T) {
	u := qhorn.MustUniverse(4)
	target := qhorn.MustParseQuery(u, "∀x1 ∃x2x3 ∃x4")
	var steps []qhorn.TraceStep
	learned, stats := qhorn.LearnQhorn1Traced(u, qhorn.TargetOracle(target), func(s qhorn.TraceStep) {
		steps = append(steps, s)
	})
	if !learned.Equivalent(target) {
		t.Fatal("traced learning failed")
	}
	if len(steps) != stats.Total() {
		t.Fatalf("steps = %d, questions = %d", len(steps), stats.Total())
	}
	learnedRP, rpStats := qhorn.LearnRolePreservingTraced(u, qhorn.TargetOracle(target), nil)
	if !learnedRP.Equivalent(target) || rpStats.Total() == 0 {
		t.Fatal("traced RP learning failed")
	}
}

func TestFacadeEstimates(t *testing.T) {
	if qhorn.EstimateQhorn1(16) <= 16 {
		t.Error("qhorn-1 estimate too small")
	}
	if qhorn.EstimateRolePreserving(16, 2, 2, 6) <= qhorn.EstimateQhorn1(16) {
		t.Error("role-preserving estimate should dominate")
	}
}

func TestFacadeQueryMethods(t *testing.T) {
	u := qhorn.MustUniverse(4)
	a := qhorn.MustParseQuery(u, "∃x1x2")
	b := qhorn.MustParseQuery(u, "∃x1")
	if !a.Implies(b) || b.Implies(a) {
		t.Error("Implies through the facade broken")
	}
	r := qhorn.MustParseQuery(u, "∀x1x2 → x3 ∀x2x3 → x4").Classify()
	if r.RolePreserving {
		t.Error("Classify through the facade broken")
	}
	if qhorn.MustParseQuery(u, "∃x1 ∃x2 ∃x3 ∃x4").Classify().Qhorn1 != true {
		t.Error("Classify qhorn-1 wrong")
	}
}

func TestFacadeClassifyAndReport(t *testing.T) {
	u := qhorn.MustUniverse(6)
	r := qhorn.Classify(qhorn.MustParseQuery(u, "∀x1x4 → x5 ∀x2x3x5 → x6"))
	if r.RolePreserving {
		t.Error("Classify facade broken")
	}
	vs, err := qhorn.BuildVerificationSet(qhorn.MustParseQuery(u, "∀x1x4 → x5 ∃x2x3"))
	if err != nil {
		t.Fatal(err)
	}
	var report qhorn.VerificationReport = vs.Report()
	if report.Variables != 6 || len(report.Questions) != len(vs.Questions) {
		t.Errorf("report = %+v", report)
	}
}

func TestFacadeParallel(t *testing.T) {
	u := qhorn.MustUniverse(6)
	target := qhorn.MustParseQuery(u, "∀x1x4 → x5 ∃x2x3")
	pool := qhorn.ParallelOracleOf(qhorn.TargetOracle(target), 4)
	var batch qhorn.BatchOracle = pool
	qs := []qhorn.Set{
		qhorn.MustParseSet(u, "{111111}"),
		qhorn.MustParseSet(u, "{000000}"),
	}
	answers := qhorn.AskAll(batch, qs)
	if len(answers) != 2 || answers[0] != target.Eval(qs[0]) || answers[1] != target.Eval(qs[1]) {
		t.Errorf("AskAll through the facade: %v", answers)
	}

	serial, sstats := qhorn.LearnQhorn1(u, qhorn.TargetOracle(target))
	learned, stats := qhorn.LearnQhorn1Parallel(u, pool)
	if !learned.Equivalent(serial) || stats.Total() != sstats.Total() {
		t.Errorf("LearnQhorn1Parallel got %s (%d questions), serial %s (%d)",
			learned, stats.Total(), serial, sstats.Total())
	}
	rpSerial, rpsStats := qhorn.LearnRolePreserving(u, qhorn.TargetOracle(target))
	rp, rpStats := qhorn.LearnRolePreservingParallel(u, pool)
	if !rp.Equivalent(rpSerial) || rpStats.Total() != rpsStats.Total() {
		t.Errorf("LearnRolePreservingParallel got %s (%d questions), serial %s (%d)",
			rp, rpStats.Total(), rpSerial, rpsStats.Total())
	}
	res, err := qhorn.VerifyParallel(target, pool)
	if err != nil || !res.Correct {
		t.Errorf("VerifyParallel: %+v, %v", res, err)
	}
}

// TestFacadeCompiledKernel covers the compiled-kernel facade: Compile,
// the two target-oracle flavors, and the engine's evaluation-mode
// options.
func TestFacadeCompiledKernel(t *testing.T) {
	u := qhorn.MustUniverse(4)
	q := qhorn.MustParseQuery(u, "∀x1x2 → x3 ∃x4")
	c := qhorn.Compile(q)
	compiled := qhorn.TargetOracle(q)
	interpreted := qhorn.TargetOracleInterpreted(q)
	for i, o := range []qhorn.Set{
		qhorn.MustParseSet(u, "{1110, 0001}"),
		qhorn.MustParseSet(u, "{1100}"),
		{},
	} {
		want := q.Eval(o)
		if c.Eval(o) != want || compiled.Ask(o) != want || interpreted.Ask(o) != want {
			t.Fatalf("object %d: kernel/oracle answers diverge from Query.Eval", i)
		}
	}
	if !c.Equivalent(qhorn.Compile(qhorn.MustParseQuery(u, "∃x4 ∀x1x2 → x3"))) {
		t.Error("compiled Equivalent missed a reordering")
	}

	// Both evaluation modes drive a full engine learn run to the same
	// query.
	for _, opt := range []qhorn.RunOption{qhorn.WithCompiledEval(), qhorn.WithInterpretedEval()} {
		target := qhorn.MustParseQuery(u, "∀x1 → x2 ∀x3 → x4")
		learned, _ := qhorn.Learn(u, qhorn.TargetOracle(target),
			qhorn.WithAlgorithm(qhorn.AlgorithmQhorn1), opt)
		if !learned.Equivalent(target) {
			t.Errorf("engine learned %s, want %s", learned, target)
		}
	}
}
