package main

import (
	"bytes"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	engine "qhorn/internal/run"
	"qhorn/internal/serve"
)

// lockedBuffer lets the test read stdout while run() is still writing.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

var urlRe = regexp.MustCompile(`listening on (http://[^ \n]+)`)

func TestServeAndDriveSession(t *testing.T) {
	var out, errOut lockedBuffer
	stop := make(chan os.Signal, 1)
	done := make(chan int, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-budget", "500"}, &out, &errOut, stop) }()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := urlRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not report its URL; stdout=%q stderr=%q", out.String(), errOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	c := serve.NewClient(base)
	info, err := c.Create(serve.CreateRequest{Variables: 3, Algorithm: "qhorn1"})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	u, err := boolean.NewUniverse(3)
	if err != nil {
		t.Fatal(err)
	}
	target, err := query.Parse(u, "Ax1 -> x2")
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Drive(info.ID, serve.AnswererFor(u, oracle.Target(target)), serve.DriveOptions{Poll: time.Second})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("session ended %q (error %q), want done", final.State, final.Error)
	}
	want, _ := learn.Run(u, oracle.Target(target), engine.WithAlgorithm(engine.Qhorn1), engine.WithBatch())
	if final.Learned != want.String() {
		t.Fatalf("learned %q over HTTP, direct learn.Run gives %q", final.Learned, want)
	}

	stop <- os.Interrupt
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run returned %d; stderr=%q", code, errOut.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not exit after stop signal")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("stdout missing shutdown notice: %q", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut lockedBuffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut, nil); code != 2 {
		t.Fatalf("bad flag returned %d, want 2", code)
	}
}

func TestBadAddr(t *testing.T) {
	var out, errOut lockedBuffer
	if code := run([]string{"-addr", "127.0.0.1:notaport"}, &out, &errOut, nil); code != 1 {
		t.Fatalf("bad addr returned %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "qhornd:") {
		t.Errorf("stderr missing error: %q", errOut.String())
	}
}
