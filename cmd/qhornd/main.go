// Command qhornd is the qhorn session server: learning-as-a-service
// over HTTP (docs/SERVICE.md). It hosts concurrent learn/verify
// sessions whose membership questions are answered remotely —
// POST /sessions creates a session, GET /sessions/{id}/questions
// long-polls the outstanding batch, POST /sessions/{id}/answers
// delivers answers out of order, GET /sessions/{id}/snapshot persists
// a session for crash/resume, POST /sessions/{id}/amend runs the §5
// revision loop. The observability plane is mounted on the same port:
// /metrics, /healthz, /spans, /progress, /debug/pprof.
//
// Usage:
//
//	qhornd                          # listen on :8091
//	qhornd -addr :9000 -shards 16 -max-sessions 1000 -budget 5000
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"qhorn/internal/serve"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop))
}

// run is the testable entry point: it serves until stop delivers and
// returns the exit code.
func run(args []string, stdout, stderr io.Writer, stop <-chan os.Signal) int {
	fs := flag.NewFlagSet("qhornd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8091", "listen address (host:port; port 0 picks a free port)")
		shards      = fs.Int("shards", serve.DefaultShards, "session-table shard count")
		maxSessions = fs.Int("max-sessions", 0, "max concurrently running sessions (0 = unlimited); excess creations get 429")
		budget      = fs.Int("budget", 0, "default per-session live-question budget (0 = unlimited)")
		memoCap     = fs.Int("memo-capacity", 0, "shared cross-session memo tier capacity in answers (0 = default, negative disables the tier)")
		flightSpans = fs.Int("flight-spans", 0, "span flight-recorder capacity (0 = default)")
		quiet       = fs.Bool("quiet", false, "suppress per-session diagnostics")

		readHeaderTimeout = fs.Duration("read-header-timeout", 0, "drop clients that trickle request headers after this long (0 = default, negative disables)")
		writeTimeout      = fs.Duration("write-timeout", 0, "bound a whole response write (0 = default, negative disables)")
		idleTimeout       = fs.Duration("idle-timeout", 0, "reclaim idle keep-alive connections after this long (0 = default, negative disables)")
		maxHeaderBytes    = fs.Int("max-header-bytes", 0, "cap request header size (0 = default, negative = net/http default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := log.New(stderr, "qhornd: ", log.LstdFlags)
	cfg := serve.Config{
		Shards:            *shards,
		MaxSessions:       *maxSessions,
		Budget:            *budget,
		MemoCapacity:      *memoCap,
		FlightSpans:       *flightSpans,
		ReadHeaderTimeout: *readHeaderTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	srv := serve.New(cfg)
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintf(stderr, "qhornd: %v\n", err)
		return 1
	}
	memoNote := "memo disabled"
	if sm := srv.Memo(); sm != nil {
		memoNote = fmt.Sprintf("memo-capacity=%d", sm.Capacity())
	}
	fmt.Fprintf(stdout, "qhornd listening on %s (shards=%d max-sessions=%d budget=%d %s)\n",
		srv.URL(), *shards, *maxSessions, *budget, memoNote)
	fmt.Fprintf(stdout, "  sessions: POST %s/sessions\n", srv.URL())
	fmt.Fprintf(stdout, "  metrics:  GET  %s/metrics\n", srv.URL())
	<-stop
	fmt.Fprintln(stdout, "qhornd: shutting down (aborting in-flight sessions)")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(stderr, "qhornd: shutdown: %v\n", err)
		return 1
	}
	return 0
}
