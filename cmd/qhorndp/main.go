// Command qhorndp is the DataPlay-style session driver: one tool that
// carries a quantified query through its whole lifecycle against a
// dataset — learn it from examples, review and amend the response
// history, verify it, revise it, execute it, and print it as SQL.
//
// Usage:
//
//	qhorndp -simulate "∀x1 ∃x2x3"                 # scripted demo session
//	qhorndp -simulate "..." -mistake 3            # user misanswers question 3, then amends
//	qhorndp -props p.json -data d.json -simulate "..."
//	qhorndp -given "∀x1 ∃x2" -simulate "∀x1 ∃x2x3"  # verify + revise a written query
//
// Without -simulate the questions are asked interactively on stdin.
//
// The shared observability flags apply: -obs-addr serves /metrics,
// /spans, /progress, /healthz and /debug/pprof live during the
// session (docs/OBSERVABILITY.md).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"qhorn/internal/dataplay"
	"qhorn/internal/nested"
	"qhorn/internal/obs"
	"qhorn/internal/query"
	"qhorn/internal/revise"
	engine "qhorn/internal/run"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qhorndp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		simulate  = fs.String("simulate", "", "simulate the user with this intended query")
		given     = fs.String("given", "", "verify (and revise) this user-written query instead of learning")
		class     = fs.String("class", "qhorn1", "query class to learn: qhorn1 or rp")
		mistake   = fs.Int("mistake", 0, "simulated user misanswers this question number (0 = honest)")
		propsPath = fs.String("props", "", "JSON propositions file (default: the chocolate schema)")
		dataPath  = fs.String("data", "", "JSON dataset (default: 200 random boxes)")
		seed      = fs.Int64("seed", 1, "seed for the random store")
	)
	obsFlags := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "qhorndp: %v\n", err)
		return 1
	}
	w := stdout

	session, err := obsFlags.Start(stdout)
	if err != nil {
		return fail(err)
	}
	defer session.Close()
	root := session.Tracer.StartSpan("dataplay-session")
	defer root.End()

	ps := nested.ChocolatePropositions()
	if *propsPath != "" {
		raw, err := os.ReadFile(*propsPath)
		if err != nil {
			return fail(err)
		}
		ps, err = nested.DecodePropositions(raw)
		if err != nil {
			return fail(err)
		}
	}
	var store nested.Dataset
	if *dataPath != "" {
		raw, err := os.ReadFile(*dataPath)
		if err != nil {
			return fail(err)
		}
		var derr error
		store, derr = nested.DecodeDataset(raw)
		if derr != nil {
			return fail(derr)
		}
	} else {
		store = nested.RandomChocolates(rand.New(rand.NewSource(*seed)), 200, 5)
	}

	sys, err := dataplay.New(ps, store)
	if err != nil {
		return fail(err)
	}
	u := sys.Universe()
	fmt.Fprintf(w, "DataPlay session over %s(%s(...)), %d objects\n", ps.Schema.Object, ps.Schema.Tuple, len(store.Objects))
	for i, p := range ps.Props {
		fmt.Fprintf(w, "  x%d: %s\n", i+1, p)
	}

	// The user.
	var honest dataplay.User
	var intended query.Query
	if *simulate != "" {
		var perr error
		intended, perr = query.Parse(u, *simulate)
		if perr != nil {
			return fail(perr)
		}
		fmt.Fprintln(w, "\nsimulated user intent:", intended)
		honest = dataplay.SimulatedUser(ps, intended)
	} else {
		in := bufio.NewReader(stdin)
		honest = dataplay.UserFunc(func(o nested.Object) bool {
			fmt.Fprintln(w)
			fmt.Fprint(w, nested.FormatObject(ps.Schema, o))
			for {
				fmt.Fprint(w, "answer to your query? [y/n] ")
				line, err := in.ReadString('\n')
				switch strings.ToLower(strings.TrimSpace(line)) {
				case "y", "yes":
					return true
				case "n", "no":
					return false
				}
				if err != nil {
					return false
				}
			}
		})
	}
	shown := 0
	user := dataplay.UserFunc(func(o nested.Object) bool {
		shown++
		v := honest.Classify(o)
		if shown == *mistake {
			fmt.Fprintf(w, "  (user misanswers question %d)\n", shown)
			return !v
		}
		return v
	})

	// Verify/revise mode.
	if *given != "" {
		gq, err := query.Parse(u, *given)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(w, "\nverifying written query:", gq)
		sp := root.StartChild("verify", obs.A("query", gq.String()))
		res, err := sys.VerifyQuery(gq, user)
		sp.End()
		if err != nil {
			return fail(err)
		}
		if res.Correct {
			fmt.Fprintf(w, "VERIFIED with %d questions\n", res.QuestionsAsked)
			return 0
		}
		fmt.Fprintf(w, "INCORRECT (%d disagreements); revising…\n", len(res.Disagreements))
		sp = root.StartChild("revise")
		rres, err := sys.ReviseQuery(gq, user)
		sp.End()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(w, "revised query:", rres.Revised)
		fmt.Fprintln(w, "changes:")
		fmt.Fprintln(w, revise.Explain(gq, rres.Revised))
		return report(w, stderr, sys, rres.Revised, ps)
	}

	// Learning mode. The run engine composes every flag-driven option
	// (engine.FromFlags) — except the worker pool: the amendable session
	// history of §5 replays answers from a serialized transcript and is
	// not concurrency-safe, so -parallel falls back to the engine's
	// batch structure over a serial oracle (identical questions,
	// identical counts).
	engineFlags := *obsFlags
	engineFlags.Parallel = 0
	opts := engine.FromFlags(&engineFlags, session)
	if obsFlags.Parallel > 0 {
		fmt.Fprintln(w, "parallel unavailable for amendable history: running serial")
		opts = append(opts, engine.WithBatch())
	}
	cl, err := engine.ParseAlgorithm(*class)
	if err != nil {
		return fail(err)
	}
	sp := root.StartChild("learn", obs.A("class", *class))
	learned, err := sys.Learn(cl, user, opts...)
	sp.End()
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(w, "\nlearned after %d questions: %s\n", sys.Questions, learned)

	// Confirm with the O(k) verification set. A failure means some
	// recorded response contradicts the user's intent — the §5 flow:
	// review the history, amend, re-learn.
	sp = root.StartChild("verify", obs.A("query", learned.String()))
	vres, err := sys.VerifyQuery(learned, user)
	sp.End()
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(w, "verification: correct=%v (%d questions)\n", vres.Correct, vres.QuestionsAsked)
	if !vres.Correct && *simulate != "" {
		fmt.Fprintln(w, "reviewing interaction history against the user's intent…")
		sp = root.StartChild("amend-review")
		fixed, err := sys.AmendReview(honest)
		sp.End()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(w, "  amended %d response(s)\n", fixed)
		sp = root.StartChild("learn", obs.A("class", *class), obs.A("after", "amendment"))
		learned, err = sys.Learn(cl, dataplay.UserFunc(honest.Classify), opts...)
		sp.End()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(w, "re-learned:", learned)
		vres, err = sys.VerifyQuery(learned, dataplay.UserFunc(honest.Classify))
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(w, "verification after amendment: correct=%v\n", vres.Correct)
	}
	if *simulate != "" {
		fmt.Fprintln(w, "equivalent to intent:", learned.Equivalent(intended))
	}
	return report(w, stderr, sys, learned, ps)
}

func report(w, stderr io.Writer, sys *dataplay.System, q query.Query, ps nested.Propositions) int {
	fail := func(err error) int {
		fmt.Fprintf(stderr, "qhorndp: %v\n", err)
		return 1
	}
	matches, err := sys.Execute(q)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(w, "\nexecution: %d answers\n", len(matches))
	for i, o := range matches {
		if i == 2 {
			fmt.Fprintf(w, "  … and %d more\n", len(matches)-2)
			break
		}
		fmt.Fprint(w, nested.FormatObject(ps.Schema, o))
	}
	sql, err := sys.SQL(q)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(w, "\nas SQL:\n%s\n", sql)
	return 0
}
