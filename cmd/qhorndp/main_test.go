package main

import (
	"strings"
	"testing"
)

func runCLI(t *testing.T, stdin string, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), code
}

func TestHonestSession(t *testing.T) {
	out, _, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"DataPlay session",
		"learned after",
		"verification: correct=true",
		"equivalent to intent: true",
		"execution:",
		"as SQL:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestMistakeAndAmendment(t *testing.T) {
	out, _, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3", "-mistake", "4")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"(user misanswers question 4)",
		"amended 1 response(s)",
		"verification after amendment: correct=true",
		"equivalent to intent: true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGivenQueryVerified(t *testing.T) {
	out, _, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3", "-given", "Ax1 Ex2x3")
	if code != 0 || !strings.Contains(out, "VERIFIED") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestGivenQueryRevised(t *testing.T) {
	out, _, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3", "-given", "Ax1 Ex2")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"INCORRECT", "revising", "revised query:", "changes:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRolePreservingSession(t *testing.T) {
	out, _, code := runCLI(t, "", "-class", "rp", "-simulate", "Ex2x3")
	if code != 0 || !strings.Contains(out, "equivalent to intent: true") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestInteractiveSession(t *testing.T) {
	// Answer every question "n": a consistent user whose intent
	// rejects everything shown; the learner still terminates.
	answers := strings.Repeat("n\n", 64)
	out, _, code := runCLI(t, answers)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "answer to your query?") || !strings.Contains(out, "learned after") {
		t.Errorf("interactive flow incomplete:\n%s", out)
	}
}

// TestParallelFallsBackToSerial: -parallel cannot wrap a worker pool
// around the amendable session history, so the driver must say so
// explicitly — not silently degrade — and still learn correctly
// through the engine's serial batch structure.
func TestParallelFallsBackToSerial(t *testing.T) {
	out, _, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3", "-parallel", "4")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "parallel unavailable for amendable history: running serial") {
		t.Errorf("missing serial-fallback notice:\n%s", out)
	}
	if !strings.Contains(out, "equivalent to intent: true") {
		t.Errorf("parallel fallback session did not learn the intent:\n%s", out)
	}

	// Without -parallel the notice must not appear.
	out, _, code = runCLI(t, "", "-simulate", "Ax1 Ex2x3")
	if code != 0 || strings.Contains(out, "parallel unavailable") {
		t.Errorf("serial session printed the fallback notice (exit %d):\n%s", code, out)
	}
}

func TestUnknownClass(t *testing.T) {
	_, errb, code := runCLI(t, "", "-simulate", "Ex1", "-class", "zzz")
	if code != 1 || !strings.Contains(errb, "unknown class") {
		t.Errorf("bad class accepted (exit %d): %s", code, errb)
	}
}

func TestErrors(t *testing.T) {
	if _, _, code := runCLI(t, "", "-simulate", "zzz"); code != 1 {
		t.Error("bad simulate accepted")
	}
	if _, _, code := runCLI(t, "", "-simulate", "Ex1", "-given", "zzz"); code != 1 {
		t.Error("bad given accepted")
	}
	if _, _, code := runCLI(t, "", "-props", "/nonexistent.json"); code != 1 {
		t.Error("missing props accepted")
	}
	if _, _, code := runCLI(t, "", "-data", "/nonexistent.json"); code != 1 {
		t.Error("missing data accepted")
	}
	if _, _, code := runCLI(t, "", "-badflag"); code != 2 {
		t.Error("bad flag accepted")
	}
}

// TestSessionTrace checks the session driver emits lifecycle spans
// under -trace.
func TestSessionTrace(t *testing.T) {
	out, errb, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3", "-trace")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, span := range []string{"Span tree:", "dataplay-session", "learn", "verify"} {
		if !strings.Contains(out, span) {
			t.Errorf("trace output missing %q:\n%s", span, out)
		}
	}
}
