package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qhorn/internal/nested"
)

func runCLI(t *testing.T, stdin string, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), code
}

func TestSimulatedChocolateSession(t *testing.T) {
	out, _, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3", "-execute", "-sql")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"x1: isDark",
		"Simulating a user",
		"Learned (",
		"As SQL:",
		"SELECT o.id, o.name",
		"Executing over 100 objects",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRolePreservingClassFlag(t *testing.T) {
	out, _, code := runCLI(t, "", "-class", "rp", "-simulate", "Ex2x3")
	if code != 0 || !strings.Contains(out, "universal") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestBooleanInteractiveSession(t *testing.T) {
	// Learn ∃x1 over 2 abstract variables. The qhorn-1 learner asks:
	// head tests for x1 and x2 (both answers for ∃x1 ∃x2-ish...);
	// feed enough consistent answers for target ∃x1 ∃x2: every
	// question gets answered as the target would — but stdin is a
	// script, so precompute by simulating is overkill: drive with a
	// generous yes-list tail: after EOF, responses default to
	// non-answer, which stays consistent for this tiny target.
	out, _, code := runCLI(t, "y\ny\ny\ny\ny\ny\ny\ny\n", "-n", "2")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "Learned (") {
		t.Errorf("no learned query:\n%s", out)
	}
}

func TestJSONRoundTripFlow(t *testing.T) {
	dir := t.TempDir()
	props, err := nested.EncodePropositions(nested.ChocolatePropositions())
	if err != nil {
		t.Fatal(err)
	}
	propsPath := filepath.Join(dir, "props.json")
	if err := os.WriteFile(propsPath, props, 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := nested.EncodeDataset(nested.RandomChocolates(rand.New(rand.NewSource(3)), 30, 4))
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "data.json")
	if err := os.WriteFile(dataPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3", "-props", propsPath, "-data", dataPath, "-execute")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"Loaded 30 objects", "Executing over 30 objects"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, _, code := runCLI(t, "", "-simulate", "zzz"); code != 1 {
		t.Error("bad simulate query accepted")
	}
	if _, _, code := runCLI(t, "", "-class", "nope", "-simulate", "Ex1"); code != 1 {
		t.Error("bad class accepted")
	}
	if _, _, code := runCLI(t, "", "-n", "99"); code != 1 {
		t.Error("oversized universe accepted")
	}
	if _, _, code := runCLI(t, "", "-props", "/nonexistent.json"); code != 1 {
		t.Error("missing props file accepted")
	}
	if _, _, code := runCLI(t, "", "-data", "/nonexistent.json"); code != 1 {
		t.Error("missing data file accepted")
	}
	if _, _, code := runCLI(t, "", "-badflag"); code != 2 {
		t.Error("bad flag accepted")
	}
}

func TestExplainFlag(t *testing.T) {
	out, _, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3", "-explain")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"[heads]", "universal head variable", "-> answer"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q", want)
		}
	}
}

func TestProposeFlag(t *testing.T) {
	dir := t.TempDir()
	data, err := nested.EncodeDataset(nested.RandomChocolates(rand.New(rand.NewSource(9)), 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "d.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code := runCLI(t, "", "-propose", "-data", path, "-simulate", "Ax1 Ex2")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "Proposed") || !strings.Contains(out, "Learned (") {
		t.Errorf("propose flow incomplete:\n%s", out)
	}
	if _, _, code := runCLI(t, "", "-propose"); code != 1 {
		t.Error("-propose without -data accepted")
	}
}

// TestObservabilityEndToEnd is the acceptance scenario of the
// observability layer: a simulated role-preserving session with
// -trace -metrics emits a span tree covering every learning phase and
// a metrics exposition whose qhorn_questions_total equals the
// question count the CLI reports.
func TestObservabilityEndToEnd(t *testing.T) {
	out, errb, code := runCLI(t, "",
		"-class", "rp", "-simulate", "∀x1x2 → x3 ∃x4x5", "-trace", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}

	// The query references x4, x5: the CLI auto-widens past the
	// 3-proposition chocolate schema to a 5-variable Boolean universe.
	if !strings.Contains(out, "Learned (") {
		t.Fatalf("no learned query in output:\n%s", out)
	}

	// Span tree covers every phase of the run.
	if !strings.Contains(out, "Span tree:") {
		t.Fatalf("no span tree:\n%s", out)
	}
	for _, span := range []string{"learn/rp", "heads", "bodies", "existential", "lattice-search"} {
		if !strings.Contains(out, span) {
			t.Errorf("span tree missing %q:\n%s", span, out)
		}
	}

	// Exposition question counter equals the reported question count.
	var reported int
	if _, err := fmt.Sscanf(out[strings.Index(out, "Learned ("):], "Learned (%d questions", &reported); err != nil {
		t.Fatalf("cannot parse reported question count: %v\n%s", err, out)
	}
	if !strings.Contains(out, "Metrics:") {
		t.Fatalf("no metrics exposition:\n%s", out)
	}
	metricLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "qhorn_questions_total ") {
			metricLine = line
		}
	}
	if metricLine == "" {
		t.Fatalf("no qhorn_questions_total sample:\n%s", out)
	}
	var counted int
	if _, err := fmt.Sscanf(metricLine, "qhorn_questions_total %d", &counted); err != nil {
		t.Fatalf("cannot parse %q: %v", metricLine, err)
	}
	if counted != reported {
		t.Errorf("exposition counts %d questions, CLI reported %d", counted, reported)
	}

	// The by-phase family sums to the same count.
	byPhase := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "qhorn_questions_by_phase_total{") {
			var v int
			if _, err := fmt.Sscanf(line[strings.Index(line, "} ")+2:], "%d", &v); err == nil {
				byPhase += v
			}
		}
	}
	if byPhase != reported {
		t.Errorf("by-phase samples sum to %d, CLI reported %d", byPhase, reported)
	}
}

// TestExplainConsumesSpanStream checks -explain prints the annotated
// questions without requiring -trace.
func TestExplainConsumesSpanStream(t *testing.T) {
	out, _, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3", "-explain")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "[heads] is x1 a universal head variable?") {
		t.Errorf("explain output missing annotated question:\n%s", out)
	}
	if strings.Contains(out, "Span tree:") {
		t.Errorf("-explain alone should not render the span tree:\n%s", out)
	}
}

// TestTraceOutWritesJSONL checks -trace-out produces a parseable span
// stream file.
func TestTraceOutWritesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	_, _, code := runCLI(t, "", "-simulate", "Ax1 Ex2x3", "-trace-out", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 {
		t.Fatalf("span stream too short: %d lines", len(lines))
	}
	for _, line := range lines {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec["type"] == "" || rec["name"] == "" {
			t.Errorf("incomplete record %q", line)
		}
	}
}

func TestParallelSimulatedSession(t *testing.T) {
	for _, class := range []string{"qhorn1", "rp"} {
		out, _, code := runCLI(t, "", "-class", class, "-parallel", "4",
			"-simulate", "Ax1x2 -> x4 Ex5x6")
		if code != 0 {
			t.Fatalf("class %s: exit %d:\n%s", class, code, out)
		}
		for _, want := range []string{"4 concurrent workers", "Learned ("} {
			if !strings.Contains(out, want) {
				t.Errorf("class %s: output missing %q:\n%s", class, want, out)
			}
		}
	}
}

func TestParallelRequiresSimulate(t *testing.T) {
	_, errOut, code := runCLI(t, "y\ny\n", "-parallel", "4")
	if code == 0 || !strings.Contains(errOut, "-parallel requires -simulate") {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
}
