// Command qhornlearn runs an interactive (or simulated) query-
// learning session in the style of DataPlay: it presents concrete
// data objects — boxes of chocolates by default — and asks the user
// to classify each as an answer or a non-answer to her intended
// query, then prints the exactly-learned qhorn query.
//
// Usage:
//
//	qhornlearn                          # interactive, chocolate propositions
//	qhornlearn -class rp                # role-preserving learner
//	qhornlearn -simulate "∀x1 ∃x2x3"    # simulate the user with a target query
//	qhornlearn -n 5 -boolean            # 5 abstract propositions, Boolean display
//	qhornlearn -execute -sql            # after learning, run over a store & print SQL
//	qhornlearn -props p.json -data d.json
//
// With the default chocolate schema, the three propositions are
// x1: isDark, x2: hasFilling, x3: origin = Madagascar (Fig 1 of the
// paper).
//
// The shared observability flags apply: -obs-addr serves /metrics,
// /spans, /progress, /healthz and /debug/pprof live during the
// session (docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"regexp"
	"strconv"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/nested"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	engine "qhorn/internal/run"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qhornlearn", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		class     = fs.String("class", "qhorn1", "query class to learn: qhorn1 or rp (role-preserving)")
		simulate  = fs.String("simulate", "", "simulate the user with this target query instead of asking")
		nVars     = fs.Int("n", 0, "number of abstract Boolean propositions (0 = use the chocolate schema)")
		boolMode  = fs.Bool("boolean", false, "show questions in the Boolean domain instead of as data objects")
		execute   = fs.Bool("execute", false, "after learning, execute the query over a random chocolate store")
		seed      = fs.Int64("seed", 1, "seed for the random store")
		propsPath = fs.String("props", "", "JSON file with the schema and propositions (see nested.EncodePropositions)")
		dataPath  = fs.String("data", "", "JSON dataset to select question tuples from and to execute over")
		printSQL  = fs.Bool("sql", false, "print the learned query as SQL")
		explain   = fs.Bool("explain", false, "print what each question was testing (phase and purpose)")
		propose   = fs.Bool("propose", false, "derive the propositions automatically from the -data dataset")
	)
	obsFlags := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "qhornlearn: %v\n", err)
		return 1
	}

	// Observability session: span tracing, metrics, profiling. The
	// -explain printer consumes the span stream, so it forces the
	// tracer on even without -trace.
	var extra []obs.SpanSink
	if *explain {
		extra = append(extra, explainSink{w: stdout})
	}
	session, err := obsFlags.Start(stdout, extra...)
	if err != nil {
		return fail(err)
	}
	defer session.Close()

	// Set up the proposition universe.
	var ps nested.Propositions
	var u boolean.Universe
	useData := *nVars == 0
	// Auto-widen: a -simulate query referencing variables beyond the
	// chocolate schema implies an abstract Boolean universe of the
	// query's size.
	if useData && !*propose && *propsPath == "" && *simulate != "" {
		if max := maxVarIndex(*simulate); max > len(nested.ChocolatePropositions().Props) {
			*nVars = max
			useData = false
		}
	}
	switch {
	case *propose:
		if *dataPath == "" {
			return fail(fmt.Errorf("-propose requires -data"))
		}
		raw, err := os.ReadFile(*dataPath)
		if err != nil {
			return fail(err)
		}
		d, err := nested.DecodeDataset(raw)
		if err != nil {
			return fail(err)
		}
		ps, err = nested.ProposePropositions(d, 8)
		if err != nil {
			return fail(err)
		}
		u = ps.Universe()
		useData = true
		fmt.Fprintf(stdout, "Proposed %d propositions from the dataset\n", len(ps.Props))
	case *propsPath != "":
		raw, err := os.ReadFile(*propsPath)
		if err != nil {
			return fail(err)
		}
		ps, err = nested.DecodePropositions(raw)
		if err != nil {
			return fail(err)
		}
		u = ps.Universe()
		useData = true
	case useData:
		ps = nested.ChocolatePropositions()
		u = ps.Universe()
	default:
		var err error
		u, err = boolean.NewUniverse(*nVars)
		if err != nil {
			return fail(err)
		}
		*boolMode = true
	}
	if useData {
		fmt.Fprintf(stdout, "Propositions over %s(%s(...)):\n", ps.Schema.Object, ps.Schema.Tuple)
		for i, p := range ps.Props {
			fmt.Fprintf(stdout, "  x%d: %s\n", i+1, p)
		}
		if inter := ps.Interferences(); len(inter) > 0 {
			fmt.Fprintln(stdout, "warning: interfering propositions (the Boolean abstraction assumes independence):")
			for _, pair := range inter {
				fmt.Fprintf(stdout, "  x%d and x%d\n", pair[0]+1, pair[1]+1)
			}
		}
	}

	// Optional dataset: questions prefer real tuples from it (§5),
	// served from a precomputed Boolean-class index.
	var store nested.Dataset
	var index *nested.Index
	haveStore := false
	if *dataPath != "" {
		raw, err := os.ReadFile(*dataPath)
		if err != nil {
			return fail(err)
		}
		store, err = nested.DecodeDataset(raw)
		if err != nil {
			return fail(err)
		}
		index, err = nested.NewIndex(ps, store)
		if err != nil {
			return fail(err)
		}
		haveStore = true
		profile := nested.Selectivity(ps, store)
		fmt.Fprintf(stdout, "Loaded %d objects (%d tuples, %d Boolean classes present of %d possible)\n",
			profile.TotalObjects, profile.TotalTuples, len(profile.Classes), 1<<uint(u.N()))
	}

	// Build the oracle: a simulated or interactive user.
	var user oracle.Oracle
	var oracleErr error
	if *simulate != "" {
		target, err := query.Parse(u, *simulate)
		if err != nil {
			return fail(fmt.Errorf("bad -simulate query: %w", err))
		}
		fmt.Fprintf(stdout, "Simulating a user whose intended query is: %s\n", target)
		// Compiled kernel by default; -interpreted-eval forces the
		// interpreted evaluator (docs/PERFORMANCE.md).
		user = engine.New(engine.FromFlags(obsFlags, session)...).SimulatedUser(target)
	} else if *boolMode {
		user = oracle.Interactive(u, stdin, stdout)
	} else {
		inner := oracle.Interactive(u, stdin, stdout)
		user = oracle.Func(func(s boolean.Set) bool {
			var obj nested.Object
			var err error
			if haveStore {
				obj, err = index.Select("sample", s)
			} else {
				obj, err = ps.ConcretizeQuestion("sample", s)
			}
			if err != nil {
				oracleErr = err
				return false
			}
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, nested.FormatObject(ps.Schema, obj))
			return inner.Ask(s)
		})
	}
	// -parallel: answer independent questions concurrently. Only a
	// simulated user is concurrency-safe — interactive prompts would
	// interleave — so the flag requires -simulate. The engine assembles
	// the worker pool itself (run.WithParallel via engine.FromFlags).
	if obsFlags.Parallel > 0 {
		if *simulate == "" {
			return fail(fmt.Errorf("-parallel requires -simulate (an interactive user cannot answer concurrently)"))
		}
		fmt.Fprintf(stdout, "Answering independent questions with %d concurrent workers\n", obsFlags.Parallel)
	}

	// Learn through the run engine with full observability (spans,
	// metrics, -explain): one option list composes the algorithm, the
	// counter, the pool and the hooks.
	alg, err := engine.ParseAlgorithm(*class)
	if err != nil {
		return fail(err)
	}
	opts := append(engine.FromFlags(obsFlags, session), engine.WithAlgorithm(alg))
	var learned query.Query
	var stats engine.Stats
	learned, stats = learn.Run(u, user, opts...)
	if alg == engine.RolePreserving {
		fmt.Fprintf(stdout, "\nLearned (%d questions: %d head, %d universal, %d existential):\n  %s\n",
			stats.Total(), stats.HeadQuestions, stats.BodyQuestions, stats.ExistentialQuestions, learned)
	} else {
		fmt.Fprintf(stdout, "\nLearned (%d questions: %d head, %d body, %d existential):\n  %s\n",
			stats.Total(), stats.HeadQuestions, stats.BodyQuestions, stats.ExistentialQuestions, learned)
	}
	if oracleErr != nil {
		return fail(oracleErr)
	}

	if *printSQL && useData {
		sql, err := nested.SQL(learned, ps)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\nAs SQL:\n%s\n", sql)
	}

	if *execute && useData {
		if !haveStore {
			rng := rand.New(rand.NewSource(*seed))
			store = nested.RandomChocolates(rng, 100, 6)
		}
		matches, err := nested.Execute(learned, ps, store)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\nExecuting over %d objects: %d answers\n", len(store.Objects), len(matches))
		for i, o := range matches {
			if i == 3 {
				fmt.Fprintf(stdout, "  … and %d more\n", len(matches)-3)
				break
			}
			fmt.Fprint(stdout, nested.FormatObject(ps.Schema, o))
		}
	}
	if err := session.Close(); err != nil {
		return fail(err)
	}
	return 0
}

// explainSink prints every membership question as it is asked, with
// its phase and purpose, by consuming "question" events of the span
// stream.
type explainSink struct{ w io.Writer }

func (e explainSink) SpanStart(*obs.Span) {}
func (e explainSink) SpanEnd(*obs.Span)   {}
func (e explainSink) SpanEvent(sp *obs.Span, ev obs.Event) {
	if ev.Name != "question" {
		return
	}
	attrs := map[string]string{}
	for _, a := range ev.Attrs {
		attrs[a.Key] = a.Value
	}
	fmt.Fprintf(e.w, "  [%s] %s  %s -> %s\n",
		attrs["phase"], attrs["purpose"], attrs["question"], attrs["answer"])
}

// maxVarIndex returns the largest xN variable index mentioned in a
// query string, or 0.
var varIndexRE = regexp.MustCompile(`x(\d+)`)

func maxVarIndex(s string) int {
	max := 0
	for _, m := range varIndexRE.FindAllStringSubmatch(s, -1) {
		if n, err := strconv.Atoi(m[1]); err == nil && n > max {
			max = n
		}
	}
	return max
}
