// Command qhornfuzz drives the differential-testing engine
// (internal/difffuzz): it cross-validates the exact learners, the
// verification-set construction, brute-force learning, and
// ground-truth semantics against each other on seeded random queries
// and adversarial mutants, shrinks any disagreement to a
// locally-minimal repro, and writes repros to a replayable corpus.
//
// Usage:
//
//	qhornfuzz -runs 500 -seed 1                 # the CI smoke run
//	qhornfuzz -class qhorn1 -runs 200           # restrict the class
//	qhornfuzz -corpus internal/difffuzz/testdata/corpus   # replay repros
//	qhornfuzz -runs 500 -minimize -repro-dir /tmp/repros  # shrink + persist
//
// Exit status is 0 when every judgment agreed, 1 on any disagreement,
// 2 on usage errors. The shared observability flags (-trace,
// -metrics, -trace-out, -profile) report where the questions went;
// -obs-addr serves /metrics, /spans, /progress, /healthz and
// /debug/pprof live while the fuzzer runs (docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qhorn/internal/difffuzz"
	"qhorn/internal/obs"
	"qhorn/internal/query"
	engine "qhorn/internal/run"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	_ = stdin
	fs := flag.NewFlagSet("qhornfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed         = fs.Int64("seed", 1, "seed for the deterministic case generator")
		runs         = fs.Int("runs", 100, "number of generated learning cases (each adds a derived verify case)")
		class        = fs.String("class", "both", "hidden-query class: qhorn1, rp, or both")
		minVars      = fs.Int("min-n", 2, "smallest universe size")
		maxVars      = fs.Int("max-n", 8, "largest universe size")
		minimize     = fs.Bool("minimize", false, "shrink each disagreement to a locally-minimal repro")
		corpus       = fs.String("corpus", "", "replay the *.repro corpus in this directory instead of generating cases")
		reproDir     = fs.String("repro-dir", "", "write a .repro file for each (minimized) disagreement to this directory")
		inject       = fs.Bool("inject", false, "corrupt the learner's output (drop its first expression) to demonstrate detection, minimization, and repro writing")
		matrix       = fs.Bool("matrix", false, "add the run-engine options-matrix judge: replay each case through every engine option combination (docs/ENGINE.md)")
		bruteN       = fs.Int("brute-n", 0, "largest universe for the exhaustive brute cross-check (0 = default 4, negative disables)")
		bruteSampleN = fs.Int("brute-sample-n", 0, "largest universe for the sampled brute cross-check (0 = default 5, negative disables)")
		quiet        = fs.Bool("q", false, "suppress the progress line")
	)
	obsFlags := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var cls difffuzz.Class
	switch *class {
	case "qhorn1":
		cls = difffuzz.ClassQhorn1
	case "rp":
		cls = difffuzz.ClassRP
	case "both", "":
	default:
		fmt.Fprintf(stderr, "qhornfuzz: unknown -class %q (want qhorn1, rp, or both)\n", *class)
		return 2
	}
	session, err := obsFlags.Start(stdout)
	if err != nil {
		return fail(stderr, err)
	}
	defer session.Close()

	var opt difffuzz.Options
	eng := engine.New(engine.FromFlags(obsFlags, session)...)
	opt.Parallel = eng.Workers
	opt.EngineMatrix = *matrix
	opt.BruteVars = *bruteN
	opt.BruteSampleVars = *bruteSampleN
	opt.Matrix = eng.BruteMatrixOptions()
	if *inject {
		opt.Warp = dropFirstExpr
		fmt.Fprintln(stdout, "INJECTING a bug into the learner's output: disagreements below are expected")
	}
	var disagreements []difffuzz.Disagreement
	if *corpus != "" {
		cases, err := difffuzz.LoadCorpus(*corpus)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "replaying %d corpus case(s) from %s\n", len(cases), *corpus)
		questions := 0
		for _, c := range cases {
			res := difffuzz.CheckCase(c, opt)
			questions += res.Questions
			disagreements = append(disagreements, res.Disagreements...)
		}
		fmt.Fprintf(stdout, "membership questions: %d\ndisagreements: %d\n", questions, len(disagreements))
	} else {
		cfg := difffuzz.Config{
			Seed: *seed, Runs: *runs, Class: cls,
			MinVars: *minVars, MaxVars: *maxVars, Options: opt,
			Spans: session.Tracer, Metrics: session.Metrics,
		}
		if !*quiet {
			cfg.Progress = func(done, total int) {
				if done%100 == 0 || done == total {
					fmt.Fprintf(stdout, "… %d/%d cases\n", done, total)
				}
			}
		}
		rep := difffuzz.Run(cfg)
		fmt.Fprintln(stdout, rep.Summary())
		disagreements = rep.Disagreements
	}

	if len(disagreements) == 0 {
		if err := session.Close(); err != nil {
			return fail(stderr, err)
		}
		return 0
	}
	for _, d := range disagreements {
		if *minimize {
			small := difffuzz.Minimize(d.Case, func(c difffuzz.Case) bool {
				return len(difffuzz.CheckCase(c, opt).Disagreements) > 0
			})
			res := difffuzz.CheckCase(small, opt)
			if len(res.Disagreements) > 0 {
				d = res.Disagreements[0]
			}
			fmt.Fprintf(stdout, "MINIMIZED %s\n", d)
		} else {
			fmt.Fprintf(stdout, "DISAGREEMENT %s\n", d)
		}
		if *reproDir != "" {
			path, err := difffuzz.WriteRepro(*reproDir, d)
			if err != nil {
				return fail(stderr, err)
			}
			fmt.Fprintf(stdout, "  repro written to %s\n", path)
		}
	}
	return 1
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "qhornfuzz: %v\n", err)
	return 1
}

// dropFirstExpr is the -inject bug: the learner "forgets" the first
// expression it learned, which every downstream judge must catch.
func dropFirstExpr(q query.Query) query.Query {
	if len(q.Exprs) == 0 {
		return q
	}
	out, err := query.New(q.U, q.Exprs[1:]...)
	if err != nil {
		return q
	}
	return out
}
