package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(""), &out, &errb)
	return out.String(), errb.String(), code
}

// TestSmokeRun: the CI invocation finds zero disagreements.
func TestSmokeRun(t *testing.T) {
	out, errb, code := runCLI(t, "-runs", "120", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out, errb)
	}
	for _, want := range []string{"disagreements: 0", "membership questions:", "brute cross-checks"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestClassRestriction: -class qhorn1 reports no rp cases.
func TestClassRestriction(t *testing.T) {
	out, _, code := runCLI(t, "-runs", "20", "-class", "qhorn1", "-q")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "rp 0,") {
		t.Errorf("rp cases generated under restriction:\n%s", out)
	}
}

// TestMatrixJudge: -matrix replays every case through the engine's
// option combinations and still finds zero disagreements.
func TestMatrixJudge(t *testing.T) {
	out, errb, code := runCLI(t, "-runs", "20", "-seed", "2", "-matrix", "-q")
	if code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out, errb)
	}
	if !strings.Contains(out, "disagreements: 0") {
		t.Errorf("output missing clean verdict:\n%s", out)
	}
}

// TestUsageErrors: bad flags and classes exit 2.
func TestUsageErrors(t *testing.T) {
	if _, _, code := runCLI(t, "-class", "bogus"); code != 2 {
		t.Errorf("bad -class: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestCorpusReplay: the checked-in seed corpus replays clean.
func TestCorpusReplay(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "difffuzz", "testdata", "corpus")
	out, errb, code := runCLI(t, "-corpus", dir)
	if code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out, errb)
	}
	if !strings.Contains(out, "replaying") || !strings.Contains(out, "disagreements: 0") {
		t.Errorf("unexpected replay output:\n%s", out)
	}
}

// TestCorpusMissingDirIsEmpty: a nonexistent corpus is empty, not an
// error; a corrupt one fails.
func TestCorpusErrors(t *testing.T) {
	out, _, code := runCLI(t, "-corpus", filepath.Join(t.TempDir(), "nope"))
	if code != 0 || !strings.Contains(out, "replaying 0") {
		t.Errorf("missing corpus: exit %d:\n%s", code, out)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.repro"), []byte("class: nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, errb, code := runCLI(t, "-corpus", dir); code != 1 || !strings.Contains(errb, "bad.repro") {
		t.Errorf("corrupt corpus: exit %d, stderr %q", code, errb)
	}
}

// TestInjectMinimizeRepro: with -inject the pipeline detects the bug,
// minimizes the repro, and writes it; the written repro replays with
// -inject and is caught again.
func TestInjectMinimizeRepro(t *testing.T) {
	dir := t.TempDir()
	out, errb, code := runCLI(t,
		"-runs", "10", "-seed", "2", "-q",
		"-inject", "-minimize", "-repro-dir", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (injected bug must be detected):\n%s%s", code, out, errb)
	}
	for _, want := range []string{"INJECTING", "MINIMIZED", "repro written to"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no repro files written (err=%v)", err)
	}
	// The repro replays: clean without the injected bug, caught with it.
	if out, _, code := runCLI(t, "-corpus", dir); code != 0 {
		t.Errorf("repro replay without -inject: exit %d:\n%s", code, out)
	}
	if out, _, code := runCLI(t, "-corpus", dir, "-inject"); code != 1 {
		t.Errorf("repro replay with -inject: exit %d, want 1:\n%s", code, out)
	}
}

// TestObservabilityFlags: -trace and -metrics surface the fuzz span
// and counters.
func TestObservabilityFlags(t *testing.T) {
	out, _, code := runCLI(t, "-runs", "10", "-q", "-trace", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"difffuzz", "qhorn_fuzz_cases_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
