// Command qhornload is the sustained-load generator for qhornd
// (internal/load): it drives concurrent learn/verify/amend sessions
// over persistent HTTP connections and reports sessions/sec,
// questions/sec and latency percentiles — client-observed session
// latencies plus the server's qhornd_http_seconds{route=} and
// qhorn_oracle_ask_seconds histograms.
//
// Usage:
//
//	qhornload -base http://127.0.0.1:8091 -sessions 256 -workers 8
//	qhornload -wire fused -warm-frac 0.5 -think 5ms -assert
//	qhornload -min-sessions-per-sec 50 -max-p99 2s   # CI gate
//
// With no -base it spawns an in-process qhornd for the run, which
// makes a self-contained smoke test: qhornload -assert exercises the
// full wire under concurrency and fails on any bit-identity drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"qhorn/internal/load"
	"qhorn/internal/run"
	"qhorn/internal/serve"
)

func main() {
	os.Exit(mainRun(os.Args[1:], os.Stdout, os.Stderr))
}

// mainRun is the testable entry point.
func mainRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qhornload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		base     = fs.String("base", "", "qhornd base URL; empty spawns an in-process server")
		sessions = fs.Int("sessions", 64, "total sessions to run")
		workers  = fs.Int("workers", 8, "concurrent session drivers")
		duration = fs.Duration("duration", 0, "stop launching new sessions after this long (0 = run all sessions)")
		wireStr  = fs.String("wire", "batched", "wire mode: batched, fused or single")
		algStr   = fs.String("alg", "qhorn1", "learning algorithm: qhorn1 or rp")
		targetsN = fs.Int("targets", 0, "hidden-target pool size (0 = default)")

		verifyFrac = fs.Float64("verify-frac", 0, "fraction of sessions running verification")
		amendFrac  = fs.Float64("amend-frac", 0, "fraction of sessions that lie once and amend")
		warmFrac   = fs.Float64("warm-frac", 0, "fraction of learns sharing a memo-tier identity (warm cache)")
		think      = fs.Duration("think", 0, "mean exponential think time before each answer delivery")
		seed       = fs.Int64("seed", 1, "seed for the target pool, session mix and think times")
		assert     = fs.Bool("assert", false, "assert bit-identity of every session against the direct reference")
		jsonOut    = fs.Bool("json", false, "emit the report as JSON instead of text")
		quiet      = fs.Bool("quiet", false, "suppress progress lines")

		shards      = fs.Int("shards", 0, "in-process server: session-table shards (0 = default)")
		maxSessions = fs.Int("max-sessions", 0, "in-process server: max concurrent sessions (0 = unlimited)")

		minSessionsPerSec = fs.Float64("min-sessions-per-sec", 0, "fail when sessions/sec falls below this floor (0 = no gate)")
		maxP99            = fs.Duration("max-p99", 0, "fail when the client-side session p99 exceeds this (0 = no gate)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	wire, err := serve.ParseWireMode(*wireStr)
	if err != nil {
		fmt.Fprintf(stderr, "qhornload: %v\n", err)
		return 2
	}
	alg, err := run.ParseAlgorithm(*algStr)
	if err != nil {
		fmt.Fprintf(stderr, "qhornload: %v\n", err)
		return 2
	}
	opt := load.Options{
		Base:           *base,
		Config:         serve.Config{Shards: *shards, MaxSessions: *maxSessions},
		Sessions:       *sessions,
		Workers:        *workers,
		Duration:       *duration,
		Wire:           wire,
		Algorithm:      alg,
		Targets:        *targetsN,
		VerifyFrac:     *verifyFrac,
		AmendFrac:      *amendFrac,
		WarmFrac:       *warmFrac,
		ThinkMean:      *think,
		Seed:           *seed,
		AssertIdentity: *assert,
	}
	if !*quiet {
		opt.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	rep, err := load.Run(opt)
	if err != nil {
		fmt.Fprintf(stderr, "qhornload: %v\n", err)
		return 1
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "qhornload: %v\n", err)
			return 1
		}
	} else {
		fmt.Fprint(stdout, rep.String())
	}
	code := 0
	if *minSessionsPerSec > 0 && rep.SessionsPerSec < *minSessionsPerSec {
		fmt.Fprintf(stderr, "qhornload: GATE: %.1f sessions/sec below the %.1f floor\n", rep.SessionsPerSec, *minSessionsPerSec)
		code = 1
	}
	if *maxP99 > 0 && rep.SessionP99 > *maxP99 {
		fmt.Fprintf(stderr, "qhornload: GATE: session p99 %v above the %v ceiling\n", rep.SessionP99, *maxP99)
		code = 1
	}
	return code
}
