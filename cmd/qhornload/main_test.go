package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"qhorn/internal/load"
)

// TestMainRunSmoke runs a tiny in-process load and checks the text
// report and exit code.
func TestMainRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := mainRun([]string{"-sessions", "4", "-workers", "2", "-targets", "2", "-assert", "-quiet"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"sessions 4", "throughput", "session latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestMainRunJSON checks the machine-readable report shape.
func TestMainRunJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := mainRun([]string{"-sessions", "4", "-workers", "2", "-targets", "2", "-wire", "fused", "-json", "-quiet"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var rep load.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, stdout.String())
	}
	if rep.Sessions != 4 || rep.RoundTrips == 0 {
		t.Fatalf("implausible JSON report: %+v", rep)
	}
}

// TestMainRunBadFlags covers flag validation exits.
func TestMainRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-wire", "telepathy"},
		{"-alg", "oracle-of-delphi"},
		{"-no-such-flag"},
	} {
		var stdout, stderr bytes.Buffer
		if code := mainRun(args, &stdout, &stderr); code != 2 {
			t.Fatalf("args %v exited %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

// TestMainRunGates checks that the CI gates trip: an impossible
// throughput floor and an impossible p99 ceiling both fail the run.
func TestMainRunGates(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := mainRun([]string{"-sessions", "4", "-workers", "2", "-targets", "2", "-quiet",
		"-min-sessions-per-sec", "1e12", "-max-p99", "1ns"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("gated run exited %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "GATE") {
		t.Fatalf("gate failure not reported: %s", stderr.String())
	}
}

// TestMainRunUnreachable maps a dead server to exit 1.
func TestMainRunUnreachable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := mainRun([]string{"-base", "http://127.0.0.1:1", "-sessions", "2", "-quiet"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unreachable base exited %d, want 1", code)
	}
}
