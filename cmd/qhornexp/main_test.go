package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestListExperiments(t *testing.T) {
	out, _, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"E1", "qhorn1-scaling", "E18", "teaching-sets", "claim:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, _, code := runCLI(t, "-exp", "fig7")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "E8 fig7") || !strings.Contains(out, "A1") {
		t.Errorf("fig7 output incomplete:\n%s", out[:min(400, len(out))])
	}
}

func TestRunSummaryGate(t *testing.T) {
	out, _, code := runCLI(t, "-exp", "summary", "-quick", "-trials", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("reproduction gate failed:\n%s", out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatal("no verdicts printed")
	}
}

func TestFormats(t *testing.T) {
	md, _, code := runCLI(t, "-exp", "worked-example", "-format", "markdown")
	if code != 0 || !strings.Contains(md, "| kind |") {
		t.Errorf("markdown output wrong (exit %d)", code)
	}
	csv, _, code := runCLI(t, "-exp", "worked-example", "-format", "csv")
	if code != 0 || !strings.Contains(csv, "kind,about") {
		t.Errorf("csv output wrong (exit %d)", code)
	}
	_, errb, code := runCLI(t, "-exp", "worked-example", "-format", "yaml")
	if code == 0 || !strings.Contains(errb, "unknown format") {
		t.Errorf("bad format accepted (exit %d, %q)", code, errb)
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, errb, code := runCLI(t, "-exp", "nope")
	if code == 0 || !strings.Contains(errb, "unknown experiment") {
		t.Errorf("unknown experiment accepted (exit %d)", code)
	}
}

func TestBadFlag(t *testing.T) {
	_, _, code := runCLI(t, "-definitely-not-a-flag")
	if code == 0 {
		t.Error("bad flag accepted")
	}
}

func TestOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	_, _, code := runCLI(t, "-exp", "fig7", "-out", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fig7") {
		t.Error("output file empty")
	}
	_, _, code = runCLI(t, "-exp", "fig7", "-out", filepath.Join(path, "impossible", "x"))
	if code == 0 {
		t.Error("unwritable path accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestOutDir(t *testing.T) {
	dir := t.TempDir()
	out, _, code := runCLI(t, "-exp", "fig7", "-outdir", dir)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "wrote ") {
		t.Error("no file reported")
	}
	data, err := os.ReadFile(filepath.Join(dir, "E8-fig7.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Claim:") || !strings.Contains(string(data), "| query |") {
		t.Error("markdown file incomplete")
	}
}

// TestJSONBenchOutput runs one quick experiment with -json and checks
// the BENCH_<experiment>.json file parses and carries the measured
// fields.
func TestJSONBenchOutput(t *testing.T) {
	dir := t.TempDir()
	out, errb, code := runCLI(t,
		"-exp", "qhorn1-scaling", "-quick", "-trials", "2",
		"-json", "-outdir", dir)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	path := filepath.Join(dir, "BENCH_qhorn1-scaling.json")
	if !strings.Contains(out, path) {
		t.Errorf("output does not mention %s:\n%s", path, out)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var summary map[string]interface{}
	if err := json.Unmarshal(raw, &summary); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	for _, key := range []string{"experiment", "id", "wall_seconds", "growth_exponents", "question_counts", "tables"} {
		if _, ok := summary[key]; !ok {
			t.Errorf("JSON missing %q:\n%s", key, raw)
		}
	}
	if summary["experiment"] != "qhorn1-scaling" {
		t.Errorf("experiment = %v", summary["experiment"])
	}
}

// TestExpTraceAndMetrics checks the shared observability flags on the
// experiment runner: a span per experiment and the experiments
// counter in the exposition.
func TestExpTraceAndMetrics(t *testing.T) {
	out, errb, code := runCLI(t,
		"-exp", "qhorn1-scaling", "-quick", "-trials", "2", "-trace", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "Span tree:") || !strings.Contains(out, "experiment") {
		t.Errorf("no experiment span in tree:\n%s", out)
	}
	if !strings.Contains(out, "qhorn_experiments_total 1") {
		t.Errorf("exposition missing qhorn_experiments_total:\n%s", out)
	}
}
