// Command qhornexp regenerates the tables and figures of the paper's
// evaluation (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	qhornexp -list
//	qhornexp -exp qhorn1-scaling [-seed 1] [-trials 20] [-format text|markdown|csv]
//	qhornexp -exp all -quick
//	qhornexp -exp summary          # hard pass/fail reproduction gate
//	qhornexp -exp kernel -obs-addr :6060   # watch /metrics, /spans, /progress live
//
// With -obs-addr the run serves its metrics registry, span flight
// recorder and runtime profiles over HTTP while experiments execute;
// -obs-wait keeps the server up after the run so a finished sweep can
// still be inspected (docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"qhorn/internal/exp"
	"qhorn/internal/obs"
	engine "qhorn/internal/run"
	"qhorn/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI with explicit streams so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qhornexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name    = fs.String("exp", "all", "experiment name or ID (see -list), or \"all\"")
		seed    = fs.Int64("seed", 1, "random seed")
		trials  = fs.Int("trials", 20, "trials per parameter point")
		quick   = fs.Bool("quick", false, "shrink parameter sweeps for a fast run")
		format  = fs.String("format", "text", "output format: text, markdown or csv")
		list    = fs.Bool("list", false, "list experiments and exit")
		outPath = fs.String("out", "", "write output to file instead of stdout")
		outDir  = fs.String("outdir", "", "write one markdown file per experiment into this directory")
		jsonOut = fs.Bool("json", false, "also write BENCH_<experiment>.json per experiment (into -outdir or the current directory)")
	)
	obsFlags := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "%-4s %-22s %s\n     claim: %s\n", e.ID, e.Name, e.Paper, e.Claim)
		}
		return 0
	}

	var experiments []exp.Experiment
	if *name == "all" {
		experiments = exp.All()
	} else {
		e, ok := exp.ByName(*name)
		if !ok {
			fmt.Fprintf(stderr, "qhornexp: unknown experiment %q; try -list\n", *name)
			return 2
		}
		experiments = []exp.Experiment{e}
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "qhornexp: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}

	session, err := obsFlags.Start(stdout)
	if err != nil {
		fmt.Fprintf(stderr, "qhornexp: %v\n", err)
		return 1
	}
	defer session.Close()

	// The harness receives the engine options the flags compose
	// (engine.FromFlags) and derives its worker sweep from them.
	cfg := exp.Config{Seed: *seed, Trials: *trials, Quick: *quick,
		Engine: engine.FromFlags(obsFlags, session)}
	// runExperiment wraps one experiment in a span, counts it and
	// produces its machine-readable bench summary.
	runExperiment := func(e exp.Experiment) (*exp.BenchSummary, []*stats.Table) {
		sp := session.Tracer.StartSpan("experiment",
			obs.A("id", e.ID), obs.A("name", e.Name))
		summary, tables := exp.Bench(e, cfg)
		sp.Annotate(obs.Af("wall_seconds", "%.3f", summary.WallSeconds))
		sp.End()
		session.Metrics.Counter(obs.MetricExperiments).Inc()
		return summary, tables
	}
	// writeBench writes BENCH_<experiment>.json when -json is set.
	writeBench := func(summary *exp.BenchSummary) error {
		if !*jsonOut {
			return nil
		}
		dir := *outDir
		if dir == "" {
			dir = "."
		}
		path := filepath.Join(dir, summary.FileName())
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := summary.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
		return nil
	}
	render := func(t *stats.Table) string {
		switch *format {
		case "markdown":
			return t.Markdown()
		case "csv":
			return t.CSV()
		case "text":
			return t.Text()
		default:
			return t.Text()
		}
	}
	if *format != "text" && *format != "markdown" && *format != "csv" {
		fmt.Fprintf(stderr, "qhornexp: unknown format %q (want text, markdown or csv)\n", *format)
		return 2
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "qhornexp: %v\n", err)
			return 1
		}
		for _, e := range experiments {
			summary, tables := runExperiment(e)
			var b strings.Builder
			fmt.Fprintf(&b, "# %s — %s\n\n%s\n\nClaim: %s\n\n", e.ID, e.Name, e.Paper, e.Claim)
			for _, t := range tables {
				b.WriteString(t.Markdown())
				b.WriteString("\n")
			}
			path := filepath.Join(*outDir, fmt.Sprintf("%s-%s.md", e.ID, e.Name))
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				fmt.Fprintf(stderr, "qhornexp: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
			if err := writeBench(summary); err != nil {
				fmt.Fprintf(stderr, "qhornexp: %v\n", err)
				return 1
			}
		}
		return 0
	}
	for _, e := range experiments {
		summary, tables := runExperiment(e)
		for _, t := range tables {
			fmt.Fprintln(out, render(t))
		}
		if err := writeBench(summary); err != nil {
			fmt.Fprintf(stderr, "qhornexp: %v\n", err)
			return 1
		}
	}
	if err := session.Close(); err != nil {
		fmt.Fprintf(stderr, "qhornexp: %v\n", err)
		return 1
	}
	return 0
}
