package main

import (
	"strings"
	"testing"
)

func runCLI(t *testing.T, stdin string, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), code
}

func TestPrintVerificationSet(t *testing.T) {
	out, _, code := runCLI(t, "", "-n", "6", "-query", "Ax1x4 -> x5 Ex2x3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"[A1]", "[N2]", "[A4]", "∀x1x4 → x5", "100110"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestVerifiedAgainstSelf(t *testing.T) {
	out, _, code := runCLI(t, "", "-n", "4", "-query", "Ax1 -> x2 Ex3x4", "-intended", "Ax1 -> x2 Ex3x4")
	if code != 0 || !strings.Contains(out, "VERIFIED") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestIncorrectDetected(t *testing.T) {
	out, _, code := runCLI(t, "", "-n", "4", "-query", "Ax1 -> x2 Ex3x4", "-intended", "Ax1 -> x3 Ex3x4")
	if code != 1 || !strings.Contains(out, "INCORRECT") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestReviseFlow(t *testing.T) {
	out, _, code := runCLI(t, "", "-n", "6",
		"-query", "Ax1x4 -> x5 Ex2x3",
		"-intended", "Ax1x4 -> x5 Ex2x3 Ex2x6",
		"-revise")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"REVISED", "changes:", "+ ∃x2x6"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFirstStopsEarly(t *testing.T) {
	out, _, code := runCLI(t, "", "-n", "4", "-query", "Ex1x2", "-intended", "Ex3x4", "-first")
	if code != 1 {
		t.Fatalf("exit %d", code)
	}
	if strings.Count(out, "disagreement(s)") != 1 || !strings.Contains(out, "1 disagreement(s)") {
		t.Errorf("early stop output:\n%s", out)
	}
}

func TestInteractiveAsk(t *testing.T) {
	// ∃x1 over 2 variables: the set has A1 {10}, N1 {00}, A4
	// {11,01,10}. Answer them correctly: y, n, y.
	out, _, code := runCLI(t, "y\nn\ny\n", "-n", "2", "-query", "Ex1", "-ask")
	if code != 0 || !strings.Contains(out, "VERIFIED") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, _, code := runCLI(t, ""); code != 2 {
		t.Error("missing flags accepted")
	}
	if _, errb, code := runCLI(t, "", "-n", "6", "-query", "zzz"); code != 1 || !strings.Contains(errb, "qhornverify:") {
		t.Error("bad query accepted")
	}
	if _, _, code := runCLI(t, "", "-n", "6", "-query", "Ax1x4 -> x5 Ax2x3x5 -> x6"); code != 1 {
		t.Error("non-role-preserving query accepted")
	}
	if _, _, code := runCLI(t, "", "-n", "4", "-query", "Ex1", "-intended", "zzz"); code != 1 {
		t.Error("bad intended query accepted")
	}
	if _, _, code := runCLI(t, "", "-badflag"); code != 2 {
		t.Error("bad flag accepted")
	}
}

// TestVerifyTraceAndMetrics checks the observability flags on a
// simulated verification run: per-family spans and kind-labeled
// counters.
func TestVerifyTraceAndMetrics(t *testing.T) {
	out, errb, code := runCLI(t, "",
		"-n", "6", "-query", "∀x1x4 → x5 ∃x2x3", "-intended", "∀x1x4 → x5 ∃x2x3",
		"-trace", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "VERIFIED") {
		t.Fatalf("not verified:\n%s", out)
	}
	if !strings.Contains(out, "Span tree:") || !strings.Contains(out, "verify/A1") {
		t.Errorf("span tree missing verify/A1:\n%s", out)
	}
	if !strings.Contains(out, `qhorn_verify_questions_total{kind="A1"} 1`) {
		t.Errorf("exposition missing kind-labeled verify counter:\n%s", out)
	}
	if !strings.Contains(out, "qhorn_questions_total ") {
		t.Errorf("exposition missing oracle question counter:\n%s", out)
	}
}

func TestParallelVerification(t *testing.T) {
	out, _, code := runCLI(t, "", "-n", "6", "-query", "Ax1x4 -> x5 Ex2x3",
		"-intended", "Ax1x4 -> x5 Ex2x3", "-parallel", "8")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"8 concurrent workers", "VERIFIED"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// A wrong query must still report its disagreements batched.
	out, _, code = runCLI(t, "", "-n", "6", "-query", "Ax1x4 -> x5 Ex2x3",
		"-intended", "Ex2x3", "-parallel", "8")
	if code != 1 || !strings.Contains(out, "INCORRECT") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestParallelRequiresIntended(t *testing.T) {
	_, errOut, code := runCLI(t, "y\n", "-n", "6", "-query", "Ex2x3", "-ask", "-parallel", "4")
	if code != 1 || !strings.Contains(errOut, "-parallel requires -intended") {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
}
