// Command qhornverify builds and optionally runs the verification
// set of a role-preserving qhorn query (§4 of the paper): the O(k)
// membership questions whose classifications uniquely determine the
// query's semantics.
//
// Usage:
//
//	qhornverify -n 6 -query "∀x1x4 → x5 ∃x2x3"          # print the set
//	qhornverify -n 6 -query "..." -ask                   # quiz the user
//	qhornverify -n 6 -query "..." -intended "..."        # simulate the user
//	qhornverify -n 6 -query "..." -intended "..." -revise
//
// With -ask or -intended, any disagreement between the user and the
// given query is reported with the question family that caught it; by
// Theorem 4.2 a semantically wrong query always disagrees somewhere.
// With -revise, an incorrect query is then corrected with further
// questions (§6) and the semantic edits are printed.
//
// The shared observability flags apply: -obs-addr serves /metrics,
// /spans, /progress, /healthz and /debug/pprof live during the run
// (docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/revise"
	engine "qhorn/internal/run"
	"qhorn/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qhornverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nVars    = fs.Int("n", 0, "number of Boolean variables")
		qText    = fs.String("query", "", "the query to verify, in shorthand (e.g. \"Ax1x2 -> x3 Ex4\")")
		intended = fs.String("intended", "", "simulate a user with this intended query")
		ask      = fs.Bool("ask", false, "interactively ask the user each question")
		doRevise = fs.Bool("revise", false, "when incorrect, revise the query with further questions")
		first    = fs.Bool("first", false, "stop at the first disagreement instead of running the full set")
	)
	obsFlags := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *nVars <= 0 || *qText == "" {
		fmt.Fprintln(stderr, "usage: qhornverify -n <vars> -query <shorthand> [-intended <shorthand> | -ask] [-revise] [-first]")
		return 2
	}
	session, err := obsFlags.Start(stdout)
	if err != nil {
		return fail(stderr, err)
	}
	defer session.Close()
	u, err := boolean.NewUniverse(*nVars)
	if err != nil {
		return fail(stderr, err)
	}
	given, err := query.Parse(u, *qText)
	if err != nil {
		return fail(stderr, err)
	}
	vs, err := verify.Build(given)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "Query (normal form): %s\n", vs.Query)
	fmt.Fprintf(stdout, "Verification set (%d questions):\n", len(vs.Questions))
	for _, q := range vs.Questions {
		expect := "non-answer"
		if q.Expect {
			expect = "answer    "
		}
		fmt.Fprintf(stdout, "  [%s] %s  %-14s %s\n", q.Kind, expect, q.About, q.Set.Format(u))
	}

	var user oracle.Oracle
	switch {
	case *intended != "":
		iq, err := query.Parse(u, *intended)
		if err != nil {
			return fail(stderr, fmt.Errorf("bad -intended query: %w", err))
		}
		fmt.Fprintf(stdout, "\nSimulating a user whose intended query is: %s\n", iq)
		// Compiled kernel by default; -interpreted-eval forces the
		// interpreted evaluator (docs/PERFORMANCE.md).
		user = engine.New(engine.FromFlags(obsFlags, session)...).SimulatedUser(iq)
	case *ask:
		user = oracle.Interactive(u, stdin, stdout)
	default:
		return 0
	}
	// -parallel: the verification questions are mutually independent,
	// so a simulated user answers the whole set as one concurrent
	// batch. Interactive users (-ask) stay serial, and -first is
	// inherently sequential, so it wins over -parallel. The run engine
	// assembles the counter, the pool and the hooks from the flags.
	if obsFlags.Parallel > 0 && *intended == "" {
		return fail(stderr, fmt.Errorf("-parallel requires -intended (an interactive user cannot answer concurrently)"))
	}
	engineFlags := *obsFlags
	if *first {
		engineFlags.Parallel = 0
	}
	opts := engine.FromFlags(&engineFlags, session)
	if *first {
		opts = append(opts, engine.WithFirstDisagreement())
	} else if obsFlags.Parallel > 0 {
		fmt.Fprintf(stdout, "Answering the verification set with %d concurrent workers\n", obsFlags.Parallel)
	}
	res := vs.RunWith(user, opts...)
	if res.Correct {
		fmt.Fprintln(stdout, "VERIFIED: the user agrees with every question; the query matches her intent.")
		if err := session.Close(); err != nil {
			return fail(stderr, err)
		}
		return 0
	}
	fmt.Fprintf(stdout, "INCORRECT: %d disagreement(s):\n", len(res.Disagreements))
	for _, d := range res.Disagreements {
		fmt.Fprintf(stdout, "  [%s] %s: query expects %v, user says %v  %s\n",
			d.Question.Kind, d.Question.About, d.Question.Expect, d.Got, d.Question.Set.Format(u))
	}
	if *doRevise {
		rres, err := revise.Revise(given, user)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "\nREVISED with %d further questions (%d verification + %d repair):\n  %s\n",
			rres.Questions(), rres.VerificationQuestions, rres.RepairQuestions, rres.Revised)
		fmt.Fprintln(stdout, "changes:")
		fmt.Fprintln(stdout, revise.Explain(given, rres.Revised))
		return 0
	}
	return 1
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "qhornverify: %v\n", err)
	return 1
}
