package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSummary(t *testing.T, name, experiment string, speedups ...string) string {
	t.Helper()
	rows := make([]string, len(speedups))
	for i, s := range speedups {
		rows[i] = `["` + string(rune('2'+i)) + `", "` + s + `"]`
	}
	doc := `{"experiment": "` + experiment + `", "quick": true, "tables": [
		{"title": "E23 kernel — brute learner", "columns": ["n", "speedup"],
		 "rows": [` + strings.Join(rows, ",") + `]}]}`
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinTolerance(t *testing.T) {
	committed := writeSummary(t, "committed.json", "kernel", "80.0", "21.0")
	fresh := writeSummary(t, "fresh.json", "kernel", "30.0", "9.0")
	if err := gate(committed, fresh, 0.35); err != nil {
		t.Fatalf("in-tolerance comparison failed: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	committed := writeSummary(t, "committed.json", "kernel", "80.0")
	fresh := writeSummary(t, "fresh.json", "kernel", "10.0")
	err := gate(committed, fresh, 0.35)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("regression not caught: %v", err)
	}
	if !strings.Contains(err.Error(), "10.00× vs committed 80.00×") {
		t.Errorf("regression message lacks the numbers: %v", err)
	}
}

func TestGateSkipsRowsMissingFromFresh(t *testing.T) {
	// Quick mode sweeps fewer n values; extra committed rows are not
	// an error as long as something overlaps.
	committed := writeSummary(t, "committed.json", "kernel", "80.0", "21.0", "5.0")
	fresh := writeSummary(t, "fresh.json", "kernel", "70.0")
	if err := gate(committed, fresh, 0.35); err != nil {
		t.Fatalf("subset comparison failed: %v", err)
	}
}

func TestGateErrors(t *testing.T) {
	committed := writeSummary(t, "committed.json", "kernel", "80.0")
	other := writeSummary(t, "other.json", "parallel", "80.0")
	if err := gate(committed, other, 0.35); err == nil || !strings.Contains(err.Error(), "experiment mismatch") {
		t.Errorf("experiment mismatch accepted: %v", err)
	}
	if err := gate(committed, filepath.Join(t.TempDir(), "absent.json"), 0.35); err == nil {
		t.Error("missing fresh file accepted")
	}
	if err := gate(filepath.Join(t.TempDir(), "absent.json"), committed, 0.35); err == nil {
		t.Error("missing committed file accepted")
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := gate(committed, bad, 0.35); err == nil {
		t.Error("malformed JSON accepted")
	}

	// A summary with no speedup columns cannot be gated on.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"experiment": "kernel", "tables": [{"title": "t", "columns": ["n"], "rows": [["2"]]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := gate(empty, committed, 0.35); err == nil || !strings.Contains(err.Error(), "no speedup or reduction columns") {
		t.Errorf("ratio-free committed summary accepted: %v", err)
	}

	// Overlap can also be empty when parameter values disagree.
	shifted := filepath.Join(t.TempDir(), "shifted.json")
	if err := os.WriteFile(shifted, []byte(`{"experiment": "kernel", "tables": [{"title": "E23 kernel — brute learner", "columns": ["n", "speedup"], "rows": [["9", "3.0"]]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := gate(committed, shifted, 0.35); err == nil || !strings.Contains(err.Error(), "no overlapping") {
		t.Errorf("disjoint rows accepted: %v", err)
	}
}

// writeWireSummary builds a summary in the shape of the load
// experiment's wire table: a speedup column and a reduction column
// side by side, both of which must be gated.
func writeWireSummary(t *testing.T, name, speedup, reduction string) string {
	t.Helper()
	doc := `{"experiment": "load", "quick": true, "tables": [
		{"title": "E28 load — wire modes", "columns": ["alg/wire", "wall ms", "speedup vs single", "rt reduction"],
		 "rows": [["qhorn1/fused", "140.0", "` + speedup + `", "` + reduction + `"]]}]}`
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateCoversReductionColumns(t *testing.T) {
	committed := writeWireSummary(t, "committed.json", "2.70", "3.35")
	// Healthy speedup but collapsed round-trip reduction: the
	// reduction column alone must trip the gate.
	fresh := writeWireSummary(t, "fresh.json", "2.60", "1.01")
	err := gate(committed, fresh, 0.35)
	if err == nil || !strings.Contains(err.Error(), "rt reduction") {
		t.Fatalf("reduction regression not caught: %v", err)
	}
	ok := writeWireSummary(t, "ok.json", "2.60", "3.10")
	if err := gate(committed, ok, 0.35); err != nil {
		t.Fatalf("in-tolerance reduction failed: %v", err)
	}
}

func TestGateAgainstRealCommittedSummary(t *testing.T) {
	// Each committed summary compared against itself is the identity
	// gate — every format assumption checked on real data.
	for _, name := range []string{"BENCH_kernel.json", "BENCH_serve.json", "BENCH_load.json"} {
		real := filepath.Join("..", "..", name)
		if _, err := os.Stat(real); err != nil {
			t.Skipf("%s not present", name)
		}
		if err := gate(real, real, 0.35); err != nil {
			t.Fatalf("self-comparison of %s failed: %v", name, err)
		}
	}
}
