// Command benchgate compares a freshly measured BENCH_<exp>.json
// against the committed copy and fails when a speedup or reduction
// column regresses below a fraction of the committed value.
//
// CI runs the experiments in quick mode on shared runners, so
// absolute times are noisy; what must not regress is the *relative*
// win — compiled vs interpreted evaluation, matrix vs serial brute
// learning, batched vs single-question wire. The gate therefore
// compares only ratio columns — headers containing "speedup"
// (throughput ratios) or "reduction" (round-trip ratios) — row by
// row (matched by table title and first-column parameter), and
// tolerates a generous ratio:
//
//	benchgate -committed BENCH_kernel.json -fresh fresh.json -min-ratio 0.35
//
// passes while every fresh speedup is at least 35% of its committed
// counterpart. Rows present in only one file (quick mode sweeps a
// subset) are skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// summary mirrors the slice of exp.BenchSummary the gate needs.
type summary struct {
	Experiment string  `json:"experiment"`
	Quick      bool    `json:"quick"`
	Tables     []table `json:"tables"`
}

type table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func load(path string) (summary, error) {
	var s summary
	raw, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// noiseFloorMS: a speedup whose baseline time is this small is timer
// noise, not a measurement — its row is excluded from the gate.
const noiseFloorMS = 0.05

// ratios extracts every gated ratio cell — speedup and reduction
// columns — of a summary keyed by
// "<table title>|<first column value>|<column name>". Rows whose
// baseline timing sits under the noise floor are skipped — a ratio
// against a sub-tick time carries no signal.
func ratios(s summary) map[string]float64 {
	out := make(map[string]float64)
	for _, t := range s.Tables {
		for ci, col := range t.Columns {
			lower := strings.ToLower(col)
			if !strings.Contains(lower, "speedup") && !strings.Contains(lower, "reduction") {
				continue
			}
			for _, row := range t.Rows {
				if len(row) <= ci || len(row) == 0 || noisy(t.Columns, row) {
					continue
				}
				v, err := strconv.ParseFloat(strings.TrimSuffix(row[ci], "×"), 64)
				if err != nil {
					continue
				}
				out[t.Title+"|"+row[0]+"|"+col] = v
			}
		}
	}
	return out
}

// noisy reports whether the row's baseline timing — the first column
// whose header ends in " ms" (by layout convention the slow side:
// "interp ms", "serial ms") — is under the noise floor.
func noisy(columns, row []string) bool {
	for ci, col := range columns {
		if !strings.HasSuffix(col, " ms") || len(row) <= ci {
			continue
		}
		v, err := strconv.ParseFloat(row[ci], 64)
		return err == nil && v < noiseFloorMS
	}
	return false
}

// gate compares fresh against committed and returns one error listing
// every regression below minRatio.
func gate(committedPath, freshPath string, minRatio float64) error {
	committed, err := load(committedPath)
	if err != nil {
		return err
	}
	fresh, err := load(freshPath)
	if err != nil {
		return err
	}
	if committed.Experiment != fresh.Experiment {
		return fmt.Errorf("experiment mismatch: committed %q, fresh %q", committed.Experiment, fresh.Experiment)
	}
	base := ratios(committed)
	got := ratios(fresh)
	if len(base) == 0 {
		return fmt.Errorf("%s: no speedup or reduction columns to gate on", committedPath)
	}

	var regressions []string
	compared := 0
	for key, want := range base {
		have, ok := got[key]
		if !ok {
			continue // quick mode sweeps a subset of rows
		}
		compared++
		label := key
		if i := strings.LastIndex(key, "— "); i >= 0 {
			label = key[i+len("— "):]
		}
		if have < want*minRatio {
			regressions = append(regressions,
				fmt.Sprintf("  %s: fresh %.2f× vs committed %.2f× (floor %.2f×)", label, have, want, want*minRatio))
		} else {
			fmt.Printf("ok  %s: fresh %.2f× vs committed %.2f×\n", label, have, want)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no overlapping gated rows between %s and %s", committedPath, freshPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("ratio regression below %.0f%% of committed:\n%s",
			minRatio*100, strings.Join(regressions, "\n"))
	}
	fmt.Printf("benchgate: %d ratio cells within tolerance\n", compared)
	return nil
}

func main() {
	committed := flag.String("committed", "BENCH_kernel.json", "committed benchmark summary")
	fresh := flag.String("fresh", "", "freshly measured benchmark summary")
	minRatio := flag.Float64("min-ratio", 0.35, "fresh speedup/reduction must be at least this fraction of committed")
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}
	if err := gate(*committed, *fresh, *minRatio); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
