// Benchmarks, one per experiment row of DESIGN.md. Each reports
// questions/op — the paper's complexity measure — alongside the usual
// time and allocation figures. Regenerate the full tables with
// cmd/qhornexp; these benches pin the per-run cost of every code
// path the tables exercise.
package qhorn_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/deep"
	"qhorn/internal/learn"
	"qhorn/internal/nested"
	"qhorn/internal/oracle"
	"qhorn/internal/pac"
	"qhorn/internal/query"
	"qhorn/internal/revise"
	"qhorn/internal/run"
	"qhorn/internal/session"
	"qhorn/internal/verify"
)

// E1: qhorn-1 learning at growing n.
func BenchmarkLearnQhorn1(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			target := query.GenQhorn1Sized(rng, n, 4)
			o := oracle.Target(target)
			questions := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := learn.Qhorn1(target.U, o)
				questions = st.Total()
			}
			b.ReportMetric(float64(questions), "questions/op")
		})
	}
}

// E1 baseline: the serial O(n²) strategy.
func BenchmarkLearnQhorn1Naive(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			target := query.GenQhorn1Sized(rng, n, 4)
			o := oracle.Target(target)
			questions := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := learn.Qhorn1Naive(target.U, o)
				questions = st.Total()
			}
			b.ReportMetric(float64(questions), "questions/op")
		})
	}
}

// E2: universal Horn body search at growing causal density θ.
func BenchmarkLearnUniversal(b *testing.B) {
	for _, theta := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("theta=%d", theta), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			const n = 16
			target := query.GenRolePreserving(rng, n, query.RPOptions{
				Heads: 1, BodiesPerHead: theta,
				MinBodySize: n / 4, MaxBodySize: n / 4,
				Conjs: 2, MaxConjSize: n / 2,
			})
			o := oracle.Target(target)
			questions := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := learn.RolePreserving(target.U, o)
				questions = st.UniversalQuestions
			}
			b.ReportMetric(float64(questions), "questions/op")
		})
	}
}

// E3: existential conjunction lattice search at growing k.
func BenchmarkLearnExistential(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			const n = 16
			target := query.GenConjunctions(rng, n, k, n/2)
			o := oracle.Target(target)
			questions := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st := learn.RolePreserving(target.U, o)
				questions = st.ExistentialQuestions
			}
			b.ReportMetric(float64(questions), "questions/op")
		})
	}
}

// E4: the Theorem 2.1 adversary forcing 2^n − 1 questions.
func BenchmarkAliasAdversary(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			u := boolean.MustUniverse(n)
			class := oracle.AliasClass(u)
			pool := oracle.AliasQuestions(u)
			questions := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				adv := oracle.NewAdversary(class)
				res, err := brute.Learn(class, adv, pool)
				if err != nil {
					b.Fatal(err)
				}
				questions = res.Questions
			}
			b.ReportMetric(float64(questions), "questions/op")
		})
	}
}

// E5: the Lemma 3.4 adversary with 2-tuple questions.
func BenchmarkPairAdversary(b *testing.B) {
	for _, n := range []int{12, 16, 24} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			u := boolean.MustUniverse(n)
			class := oracle.HeadPairClass(u)
			pool := oracle.HeadPairQuestions(u, 2)
			questions := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				adv := oracle.NewAdversary(class)
				res, err := brute.Learn(class, adv, pool)
				if err != nil {
					b.Fatal(err)
				}
				questions = res.Questions
			}
			b.ReportMetric(float64(questions), "questions/op")
		})
	}
}

// E6: the Theorem 3.6 adversary at θ = 3.
func BenchmarkBodyAdversary(b *testing.B) {
	u := boolean.MustUniverse(13) // 12 body variables + head
	class := oracle.BodyClass(u, 3)
	// Pool: one question per candidate Bθ combination, as in the
	// proof (see internal/exp).
	all := u.All()
	var pool []boolean.Set
	for _, q := range class {
		// The distinguishing question of each candidate's Bθ.
		dom := q.DominantUniversals()
		bTheta := dom[len(dom)-1].Body
		for _, e := range dom {
			if e.Body.Count() > bTheta.Count() {
				bTheta = e.Body
			}
		}
		pool = append(pool, boolean.NewSet(all, bTheta))
	}
	questions := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := oracle.NewAdversary(class)
		res, err := brute.Learn(class, adv, pool)
		if err != nil {
			b.Fatal(err)
		}
		questions = res.Questions
	}
	b.ReportMetric(float64(questions), "questions/op")
}

// E7: verification-set construction at growing k.
func BenchmarkVerificationSet(b *testing.B) {
	for _, conjs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("conjs=%d", conjs), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			const n = 16
			target := query.GenRolePreserving(rng, n, query.RPOptions{
				Heads: 2, BodiesPerHead: 2, MaxBodySize: 3,
				Conjs: conjs, MaxConjSize: n / 2,
			})
			qs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vs, err := verify.Build(target)
				if err != nil {
					b.Fatal(err)
				}
				qs = len(vs.Questions)
			}
			b.ReportMetric(float64(qs), "questions/op")
		})
	}
}

// E8: regenerating Fig 7 (all two-variable verification sets).
func BenchmarkFig7(b *testing.B) {
	u := boolean.MustUniverse(2)
	queries := query.AllQueries(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := verify.Build(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E9: regenerating Fig 8 (all two-variable verification pairs).
func BenchmarkFig8(b *testing.B) {
	u := boolean.MustUniverse(2)
	queries := query.AllQueries(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, given := range queries {
			vs, err := verify.Build(given)
			if err != nil {
				b.Fatal(err)
			}
			for _, intended := range queries {
				vs.Run(oracle.Target(intended))
			}
		}
	}
}

// E10: the §4.2 worked example, learning plus verification.
func BenchmarkWorkedExample(b *testing.B) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u,
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	o := oracle.Target(target)
	questions := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		learned, st := learn.RolePreserving(u, o)
		if _, err := verify.Build(learned); err != nil {
			b.Fatal(err)
		}
		questions = st.Total()
	}
	b.ReportMetric(float64(questions), "questions/op")
}

// E11: verification vs learning cost on the same query.
func BenchmarkLearnVsVerify(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n = 16
	target := query.GenRolePreserving(rng, n, query.RPOptions{
		Heads: 2, BodiesPerHead: 2, MaxBodySize: 3, Conjs: 3, MaxConjSize: n / 2,
	})
	o := oracle.Target(target)
	b.Run("learn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			learn.RolePreserving(target.U, o)
		}
	})
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := verify.Verify(target, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E12: the data-domain round trip — synthesize a box for a Boolean
// question and execute a query over a store.
func BenchmarkDataDomain(b *testing.B) {
	ps := nested.ChocolatePropositions()
	u := ps.Universe()
	q := boolean.MustParseSet(u, "{111, 011, 100}")
	b.Run("concretize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ps.ConcretizeQuestion("probe", q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("execute", func(b *testing.B) {
		rng := rand.New(rand.NewSource(6))
		store := nested.RandomChocolates(rng, 100, 6)
		intent := query.MustParse(u, "∀x1 ∃x2x3")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := nested.Execute(intent, ps, store); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Micro-benchmarks for the primitives everything sits on.
func BenchmarkEval(b *testing.B) {
	u := boolean.MustUniverse(6)
	q := query.MustParse(u,
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	s := boolean.MustParseSet(u, "{111001, 011110, 110011, 011011, 100110}")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Eval(s)
	}
}

func BenchmarkNormalize(b *testing.B) {
	u := boolean.MustUniverse(6)
	q := query.MustParse(u,
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Normalize()
	}
}

// E13: revision cost by edit count.
func BenchmarkRevise(b *testing.B) {
	u := boolean.MustUniverse(10)
	intended := query.MustParse(u, "∀x1x2 → x9 ∀x3x4 → x10 ∃x5x6 ∃x7x8")
	cases := []struct {
		name  string
		given query.Query
	}{
		{"correct", intended},
		{"one-edit", query.MustParse(u, "∀x1x2 → x9 ∀x3x4 → x10 ∃x5x6 ∃x7x8 ∃x5x7")},
		{"two-edits", query.MustParse(u, "∀x1x2 → x9 ∃x5x6 ∃x6x7x8")},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			o := oracle.Target(intended)
			questions := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := revise.Revise(tc.given, o)
				if err != nil {
					b.Fatal(err)
				}
				questions = res.Questions()
			}
			b.ReportMetric(float64(questions), "questions/op")
		})
	}
}

// E14: PAC learning at growing sample sizes.
func BenchmarkPACLearn(b *testing.B) {
	for _, m := range []int{30, 100, 300} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			u := boolean.MustUniverse(6)
			target := query.MustParse(u, "∀x1x2 → x5 ∃x3x4")
			o := oracle.Target(target)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(int64(i)))
				sampler := pac.NewBoundarySampler(target, rng, 2)
				pac.Learn(u, o, sampler, m, pac.Params{})
			}
		})
	}
}

// E15: session replay after an amendment.
func BenchmarkSessionReplay(b *testing.B) {
	u := boolean.MustUniverse(8)
	target := query.MustParse(u, "∀x1x2 → x7 ∃x3x4 ∃x5x6")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := session.New(oracle.Target(target))
		learn.RolePreserving(u, s)
		s.ResetRun()
		learn.RolePreserving(u, s) // full replay: zero live questions
		if s.LiveQuestions != 0 {
			b.Fatal("replay asked live questions")
		}
	}
}

// E16: the learner with optimizations disabled.
func BenchmarkAblatedLearner(b *testing.B) {
	u := boolean.MustUniverse(12)
	rng := rand.New(rand.NewSource(9))
	target := query.GenRolePreserving(rng, 12, query.RPOptions{
		Heads: 2, BodiesPerHead: 2, MaxBodySize: 3, Conjs: 4, MaxConjSize: 6,
	})
	o := oracle.Target(target)
	for _, tc := range []struct {
		name string
		ab   learn.Ablations
	}{
		{"full", learn.Ablations{}},
		{"no-seeds", learn.Ablations{NoGuaranteeSeeds: true}},
		{"serial-prune", learn.Ablations{SerialPrune: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			questions := 0
			for i := 0; i < b.N; i++ {
				_, st := learn.RolePreservingAblated(u, o, tc.ab)
				questions = st.Total()
			}
			b.ReportMetric(float64(questions), "questions/op")
		})
	}
}

// E17: deep-nesting evaluation.
func BenchmarkDeepEval(b *testing.B) {
	u := boolean.MustUniverse(4)
	q := deep.Query{U: u, Depth: 2, Exprs: []deep.Expr{
		{Prefix: []query.Quantifier{query.Forall, query.Exists}, Body: boolean.FromVars(0, 1), Head: query.NoHead},
		{Prefix: []query.Quantifier{query.Forall, query.Forall}, Body: boolean.FromVars(2), Head: 3},
	}}
	shelf := deep.Set(
		deep.Set(deep.Leaf(u.MustParse("1111")), deep.Leaf(u.MustParse("0011"))),
		deep.Set(deep.Leaf(u.MustParse("1101")), deep.Leaf(u.MustParse("1111"))),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Eval(shelf)
	}
}

// Data-domain extensions.
func BenchmarkSQLRender(b *testing.B) {
	ps := nested.ChocolatePropositions()
	q := query.MustParse(ps.Universe(), "∀x1 ∃x2x3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nested.SQL(q, ps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	u := boolean.MustUniverse(6)
	q := query.MustParse(u, "∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Classify()
	}
}

// E22: the parallel batched question engine against a user with
// per-answer latency, serial vs batched at growing worker counts.
// Feeds BENCH_parallel.json (via `qhornexp -exp parallel -json`).
func BenchmarkLearnParallel(b *testing.B) {
	const n = 10
	delay := 100 * time.Microsecond
	rng := rand.New(rand.NewSource(22))
	target := query.GenRolePreserving(rng, n, query.RPOptions{
		Heads: 3, BodiesPerHead: 2, MaxBodySize: 3, Conjs: 2, MaxConjSize: 4,
	})
	slow := oracle.Func(func(s boolean.Set) bool {
		time.Sleep(delay)
		return target.Eval(s)
	})
	b.Run("serial", func(b *testing.B) {
		questions := 0
		for i := 0; i < b.N; i++ {
			_, st := learn.RolePreserving(target.U, slow)
			questions = st.Total()
		}
		b.ReportMetric(float64(questions), "questions/op")
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := oracle.Parallel(slow, workers)
			questions := 0
			for i := 0; i < b.N; i++ {
				_, st := learn.RolePreservingParallel(target.U, pool)
				questions = st.Total()
			}
			b.ReportMetric(float64(questions), "questions/op")
		})
	}
}

// E22: the batched verifier against the same latency-simulating user.
func BenchmarkVerifyParallel(b *testing.B) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u,
		"∀x1x4 → x5 ∀x3x4 → x5 ∃x1x2x3 ∃x2x3x4")
	slow := oracle.Func(func(s boolean.Set) bool {
		time.Sleep(100 * time.Microsecond)
		return target.Eval(s)
	})
	vs, err := verify.Build(target)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vs.Run(slow)
		}
	})
	b.Run("workers=8", func(b *testing.B) {
		pool := oracle.Parallel(slow, 8)
		for i := 0; i < b.N; i++ {
			vs.RunParallel(pool)
		}
	})
}

// Indexed vs direct execution over a 1000-box store.
func BenchmarkExecuteIndexedVsDirect(b *testing.B) {
	ps := nested.ChocolatePropositions()
	u := ps.Universe()
	rng := rand.New(rand.NewSource(10))
	store := nested.RandomChocolates(rng, 1000, 6)
	q := query.MustParse(u, "∀x1 ∃x2x3")
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nested.Execute(q, ps, store); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		ix, err := nested.NewIndex(ps, store)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Execute(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// sessionQuestions records the membership questions one qhorn1
// learning session asks its simulated user at n variables — the
// evaluation workload the compiled kernel exists for: every question
// of every simulated session passes through Target's evaluator.
func sessionQuestions(n int) (query.Query, []boolean.Set) {
	u := boolean.MustUniverse(n)
	target := query.GenQhorn1(rand.New(rand.NewSource(7)), n)
	tr := oracle.Record(oracle.Target(target))
	learn.Run(u, tr, run.WithAlgorithm(run.Qhorn1))
	qs := make([]boolean.Set, len(tr.Entries))
	for i, e := range tr.Entries {
		qs[i] = e.Question
	}
	return target, qs
}

// BenchmarkEvalInterpreted replays a recorded qhorn1 session's
// questions (n=24) through the tree-walking Query.Eval — the
// before side of the kernel comparison.
func BenchmarkEvalInterpreted(b *testing.B) {
	target, qs := sessionQuestions(24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range qs {
			target.Eval(s)
		}
	}
	b.ReportMetric(float64(len(qs)), "questions/op")
}

// BenchmarkEvalCompiled replays the identical question workload
// through the compiled kernel. The CI bench-smoke job compares the two
// benchmarks; the kernel must be at least 2× faster and
// allocation-free (also gated by TestCompiledEvalZeroAllocs).
func BenchmarkEvalCompiled(b *testing.B) {
	target, qs := sessionQuestions(24)
	c := query.Compile(target)
	for _, s := range qs {
		if c.Eval(s) != target.Eval(s) {
			b.Fatal("compiled kernel disagrees with interpreter on a session question")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range qs {
			c.Eval(s)
		}
	}
	b.ReportMetric(float64(len(qs)), "questions/op")
}

// bruteBenchFixture is the E2-size harness the brute benchmarks share:
// the full candidate space over n=3 and the exhaustive question pool.
func bruteBenchFixture() (candidates []query.Query, pool []boolean.Set, targets []query.Query) {
	u := boolean.MustUniverse(3)
	candidates = query.AllQueries(u)
	pool = boolean.AllObjects(u)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 8; i++ {
		targets = append(targets, candidates[rng.Intn(len(candidates))])
	}
	return candidates, pool, targets
}

// BenchmarkBruteLearnGreedySerial is the direct-evaluation baseline:
// every step re-evaluates each remaining candidate on each unused pool
// question through the interpreter.
func BenchmarkBruteLearnGreedySerial(b *testing.B) {
	candidates, pool, targets := bruteBenchFixture()
	questions := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := brute.LearnGreedySerial(candidates, oracle.Target(targets[i%len(targets)]), pool)
		if err != nil {
			b.Fatal(err)
		}
		questions = res.Questions
	}
	b.ReportMetric(float64(questions), "questions/op")
}

// BenchmarkBruteLearnMatrix runs the same greedy learns over the bitset
// answer matrix, built once and reused across runs — the designed usage
// for experiments sweeping many targets over one candidate set. Must be
// ≥5× faster than BenchmarkBruteLearnGreedySerial while asking exactly
// the same questions (TestMatrixBitIdentical pins the identity).
func BenchmarkBruteLearnMatrix(b *testing.B) {
	candidates, pool, targets := bruteBenchFixture()
	m := brute.NewMatrix(candidates, pool, 0)
	questions := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.LearnGreedy(oracle.Target(targets[i%len(targets)]))
		if err != nil {
			b.Fatal(err)
		}
		questions = res.Questions
	}
	b.ReportMetric(float64(questions), "questions/op")
}

// BenchmarkBruteMatrixBuild prices the one-time matrix construction the
// reuse pattern amortises: |candidates|·|pool| compiled evaluations
// fanned across the worker pool.
func BenchmarkBruteMatrixBuild(b *testing.B) {
	candidates, pool, _ := bruteBenchFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		brute.NewMatrix(candidates, pool, 0)
	}
}
