package qhorn_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun guards every runnable example against rot: each one
// must build, run to completion, and print its key line. Requires the
// go toolchain; skipped with -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples exec the go toolchain")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"./examples/quickstart", []string{"equivalent:         true", "verification: correct=true"}},
		{"./examples/chocolates", []string{"equivalent to intent: true", "match the query"}},
		{"./examples/verification", []string{"correct=true", "caught by [A3]"}},
		{"./examples/adversary", []string{"2^n − 1", "4095"}},
		{"./examples/observability", []string{"equivalent:         true", "learn/rp", "lattice-search", "verify/A1", "qhorn_questions_total", "/healthz: ok", "/metrics serves qhorn_questions_total: true", "/spans JSONL records: true"}},
		{"./examples/future", []string{"equivalent: true, ", "error 0.000", "depth 1 → 4, depth 2 → 12"}},
		{"./examples/fuzzing", []string{"disagreements: 0", "caught: learn-equiv", "minimized: 1 vars, 1 parts"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", tc.dir, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", tc.dir, want, out)
				}
			}
		})
	}
}
