// Observability: trace a learning run as a span tree, collect its
// metrics, print a Prometheus exposition, and serve it all live over
// HTTP — all through the public qhorn API (see docs/OBSERVABILITY.md).
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"qhorn"
)

func main() {
	u := qhorn.MustUniverse(6)
	intended := qhorn.MustParseQuery(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	fmt.Println("intended (hidden):", intended)

	// A tree sink collects the span hierarchy; a registry collects
	// the counters and histograms of the paper's cost model. The
	// counting oracle mirrors its question count into the registry.
	tree := qhorn.NewTreeSink()
	tracer := qhorn.NewSpanTracer(tree)
	reg := qhorn.NewMetricsRegistry()
	user := qhorn.CountingOracleInto(qhorn.TargetOracle(intended), reg)

	// The observability server makes the same registry and span stream
	// browsable while the run executes: /metrics, /spans, /progress,
	// /healthz and /debug/pprof. Port 0 picks a free port; a flight
	// recorder attached to our tracer feeds /spans. CLIs get the same
	// server with -obs-addr.
	srv := qhorn.NewObsServer(reg, tracer, qhorn.NewFlightRecorder(256))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()

	// One instrumentation value threads through learning and
	// verification alike; the engine options compose it with the
	// algorithm choice.
	ins := qhorn.Instrumentation{Spans: tracer, Metrics: reg}
	learned, stats := qhorn.Learn(u, user,
		qhorn.WithAlgorithm(qhorn.AlgorithmRolePreserving),
		qhorn.WithInstrumentation(ins))
	fmt.Println("learned:          ", learned)
	fmt.Println("equivalent:        ", learned.Equivalent(intended))
	fmt.Printf("questions:          %d\n", stats.Total())

	// Verification runs under the same tracer and registry.
	res, err := qhorn.VerifyQ(learned, user, qhorn.WithInstrumentation(ins))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("verification:       correct=%v (%d questions)\n", res.Correct, res.QuestionsAsked)

	// The span tree shows where the questions went: learning phases,
	// lattice searches, and one span per verification family.
	fmt.Println("\nspan tree:")
	tree.Render(os.Stdout)

	// The exposition is the Prometheus text format; qhorn_questions_total
	// equals every question the oracle answered, learning + verification.
	fmt.Println("\nmetrics exposition:")
	reg.WritePrometheus(os.Stdout)

	// The same data is live over HTTP: the metrics page carries the
	// question counters, and the /spans flight-recorder dump holds the
	// completed learning and verification spans as JSON lines.
	fmt.Println("\nlive observability server:")
	fmt.Println("  /healthz:", strings.TrimSpace(fetch(srv.URL()+"/healthz")))
	fmt.Println("  /metrics serves qhorn_questions_total:",
		strings.Contains(fetch(srv.URL()+"/metrics"), "qhorn_questions_total"))
	spanLines := strings.Count(strings.TrimSpace(fetch(srv.URL()+"/spans")), "\n") + 1
	fmt.Println("  /spans JSONL records:", spanLines > 0)
}

// fetch GETs a URL from the example's own observability server.
func fetch(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return string(body)
}
