// Adversary: watch Theorem 2.1 in action. Once variables may repeat
// freely, qhorn hides the Uni/Alias query class: 2^n candidate
// queries of which any membership question can eliminate at most
// one. A worst-case user (the adversary) forces every learner to ask
// 2^n − 1 questions — exactly why the paper restricts learning to
// qhorn-1 and role-preserving qhorn.
//
//	go run ./examples/adversary
package main

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func main() {
	fmt.Println("Theorem 2.1: learning qhorn with repeated variables needs Ω(2^n) questions")
	fmt.Printf("%4s %12s %18s %14s\n", "n", "class size", "questions forced", "2^n − 1")
	for n := 2; n <= 12; n++ {
		u := boolean.MustUniverse(n)
		class := oracle.AliasClass(u)
		adversary := oracle.NewAdversary(class)
		res, err := brute.Learn(class, adversary, oracle.AliasQuestions(u))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%4d %12d %18d %14d\n", n, len(class), res.Questions, 1<<uint(n)-1)
	}

	// One instance up close: the paper's example with alias
	// {x2, x4, x6} over six variables.
	u := boolean.MustUniverse(6)
	inst := oracle.AliasQuery(u, boolean.FromVars(1, 3, 5))
	fmt.Println("\nexample instance:", inst)
	fmt.Println("the only objects it accepts:")
	all := u.All()
	fmt.Println("  {111111}            ->", inst.Eval(boolean.NewSet(all)))
	fmt.Println("  {111111, 101010}    ->", inst.Eval(boolean.NewSet(all, u.MustParse("101010"))))
	fmt.Println("  {111111, 101011}    ->", inst.Eval(boolean.NewSet(all, u.MustParse("101011"))))

	// Contrast: within role-preserving qhorn the same number of
	// variables costs only polynomially many questions.
	fmt.Println("\ncontrast: the role-preserving learner on 12 variables")
	target := query.MustParse(boolean.MustUniverse(12),
		"∀x1x2 → x11 ∀x3x4 → x12 ∃x5x6x7 ∃x8x9x10")
	learned, stats := learn.RolePreserving(target.U, oracle.Target(target))
	fmt.Printf("  target : %s\n", target)
	fmt.Printf("  learned: %s\n", learned)
	fmt.Printf("  questions: %d (vs 2^12 − 1 = %d for the unrestricted class)\n",
		stats.Total(), 1<<12-1)
}
