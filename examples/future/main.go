// Future: the four §5/§6 directions of the paper, implemented and
// runnable — response-history amendment for noisy users, query
// revision, PAC learning from random examples, and multi-level
// nesting.
//
//	go run ./examples/future
package main

import (
	"fmt"
	"math/rand"

	"qhorn"
	"qhorn/internal/boolean"
	"qhorn/internal/deep"
	"qhorn/internal/query"
)

func main() {
	u := qhorn.MustUniverse(6)
	intended := qhorn.MustParseQuery(u, "∀x1x4 → x5 ∃x2x3")

	// ------------------------------------------------------------------
	fmt.Println("1. Noisy user + history amendment (§5)")
	truth := qhorn.TargetOracle(intended)
	asked := 0
	liar := qhorn.OracleFunc(func(s qhorn.Set) bool {
		asked++
		a := truth.Ask(s)
		if asked == 4 { // one mistaken response
			return !a
		}
		return a
	})
	// A session's amendable history is not concurrency-safe, so engine
	// runs over it stay serial (docs/ENGINE.md).
	sess := qhorn.NewSession(liar)
	first, _ := qhorn.Learn(u, sess, qhorn.WithAlgorithm(qhorn.AlgorithmRolePreserving))
	fmt.Printf("   learned with one lie:  %s (equivalent: %v)\n", first, first.Equivalent(intended))
	for i, e := range sess.Entries() {
		if truth.Ask(e.Question) != e.Answer {
			fmt.Printf("   user reviews history, flips response #%d\n", i+1)
			if err := sess.Amend(i); err != nil {
				panic(err)
			}
		}
	}
	sess.ResetRun()
	fixed, _ := qhorn.Learn(u, sess, qhorn.WithAlgorithm(qhorn.AlgorithmRolePreserving))
	fmt.Printf("   re-learned:            %s (equivalent: %v, %d new questions)\n",
		fixed, fixed.Equivalent(intended), sess.LiveQuestions)

	// ------------------------------------------------------------------
	fmt.Println("\n2. Query revision (§6)")
	almost := qhorn.MustParseQuery(u, "∀x1x4 → x5 ∃x2x3 ∃x3x6") // one extra conjunction
	fmt.Printf("   user wrote:   %s\n", almost)
	fmt.Printf("   distance to intent: %d distinguishing tuples\n", qhorn.QueryDistance(almost, intended))
	res, err := qhorn.Revise(almost, qhorn.TargetOracle(intended))
	if err != nil {
		panic(err)
	}
	fmt.Printf("   revised:      %s\n", res.Revised)
	fmt.Printf("   cost: %d questions (%d verification + %d repair), escalated: %v\n",
		res.Questions(), res.VerificationQuestions, res.RepairQuestions, res.Escalated)

	// ------------------------------------------------------------------
	fmt.Println("\n3. PAC learning from random examples (§6)")
	rng := rand.New(rand.NewSource(1))
	sampler := qhorn.NewBoundarySampler(intended, rng, 2)
	for _, m := range []int{20, 200} {
		h, stats := qhorn.LearnPAC(u, qhorn.TargetOracle(intended), sampler, m, qhorn.PACParams{})
		test := qhorn.NewBoundarySampler(intended, rand.New(rand.NewSource(2)), 2)
		fmt.Printf("   m=%-4d (%3d positives): error %.3f   hypothesis: %s\n",
			m, stats.Positives, qhorn.PACError(h, intended, test, 2000), h)
	}

	// ------------------------------------------------------------------
	fmt.Println("\n4. Multi-level nesting (§6): Shelf(Box(Chocolate))")
	u2 := boolean.MustUniverse(2) // x1 isDark, x2 hasFilling
	// Every box on the shelf contains a dark chocolate, and some box
	// is entirely filled chocolates.
	dq := deep.Query{U: u2, Depth: 2, Exprs: []deep.Expr{
		{Prefix: []query.Quantifier{query.Forall, query.Exists}, Body: boolean.FromVars(0), Head: query.NoHead},
		{Prefix: []query.Quantifier{query.Exists, query.Forall}, Body: boolean.FromVars(1), Head: query.NoHead},
	}}
	fmt.Printf("   query: %s\n", dq)
	dark := deep.Leaf(u2.MustParse("10"))
	filled := deep.Leaf(u2.MustParse("01"))
	both := deep.Leaf(u2.MustParse("11"))
	goodShelf := deep.Set(deep.Set(dark, filled), deep.Set(both))
	badShelf := deep.Set(deep.Set(filled), deep.Set(both))
	fmt.Printf("   shelf {{dark,filled},{both}}: %v\n", dq.Eval(goodShelf))
	fmt.Printf("   shelf {{filled},{both}}:      %v (a box has no dark chocolate)\n", dq.Eval(badShelf))
	q1 := deep.AllQueries(boolean.MustUniverse(1), 1)
	q2 := deep.AllQueries(boolean.MustUniverse(1), 2)
	fmt.Printf("   distinct queries on one proposition: depth 1 → %d, depth 2 → %d\n", len(q1), len(q2))
	fmt.Println("   (the blow-up with depth is why the paper stops at single-level nesting)")
}
