// Verification: reproduce the §4.2 worked example — build the
// verification set of the paper's six-variable query, show the six
// question families, and demonstrate that a user with a different
// intended query is always caught (Theorem 4.2).
//
//	go run ./examples/verification
package main

import (
	"fmt"

	"qhorn"
)

func main() {
	u := qhorn.MustUniverse(6)

	// The query of §3.2/§4.2.
	given := qhorn.MustParseQuery(u,
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	fmt.Println("given query:", given)

	vs, err := qhorn.BuildVerificationSet(given)
	if err != nil {
		panic(err)
	}
	fmt.Println("normal form:", vs.Query)
	fmt.Printf("\nverification set (%d questions):\n", len(vs.Questions))
	for _, q := range vs.Questions {
		expect := "non-answer"
		if q.Expect {
			expect = "answer"
		}
		fmt.Printf("  [%s] expect %-10s %-22s %s\n", q.Kind, expect, q.About, q.Set.Format(u))
	}

	// Case 1: the user's intent matches — every question agrees.
	res := vs.Run(qhorn.TargetOracle(given))
	fmt.Printf("\nuser intends the same query: correct=%v\n", res.Correct)

	// Case 2: the user's intended query has an extra universal body
	// x2x3x4 → x5 incomparable with the given bodies — exactly the
	// situation question A3 exists for (Lemma 4.6).
	intended := qhorn.MustParseQuery(u,
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x2x3 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	res = vs.Run(qhorn.TargetOracle(intended))
	fmt.Printf("user intends an extra body ∀x2x3 → x5: correct=%v\n", res.Correct)
	for _, d := range res.Disagreements {
		fmt.Printf("  caught by [%s] %s: %s\n", d.Question.Kind, d.Question.About, d.Question.Set.Format(u))
	}

	// Case 3: a head variable the given query missed (A4's job,
	// Lemma 4.7).
	intended = qhorn.MustParseQuery(u,
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∀x2 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	res = vs.Run(qhorn.TargetOracle(intended))
	fmt.Printf("user additionally requires ∀x2: correct=%v\n", res.Correct)
	for _, d := range res.Disagreements {
		fmt.Printf("  caught by [%s] %s\n", d.Question.Kind, d.Question.About)
	}
}
