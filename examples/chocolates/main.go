// Chocolates: the paper's running example end to end in the data
// domain. A user wants "a box of dark chocolates, some with filling
// from Madagascar" but can't write the quantified query. The learner
// synthesizes boxes of chocolates, the (simulated) user accepts or
// rejects each box, and the exact query comes out — then runs over a
// store of a hundred boxes.
//
//	go run ./examples/chocolates
package main

import (
	"fmt"
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/nested"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func main() {
	// The user's propositions (Fig 1): p1 isDark, p2 hasFilling,
	// p3 origin = Madagascar, over Box(Chocolate(...)).
	ps := nested.ChocolatePropositions()
	u := ps.Universe()
	fmt.Println("propositions:")
	for i, p := range ps.Props {
		fmt.Printf("  x%d: %s\n", i+1, p)
	}

	// The Fig 1 boxes and their Boolean abstraction.
	d := nested.Fig1Dataset()
	fmt.Println("\nFig 1 boxes in the Boolean domain:")
	for _, o := range d.Objects {
		fmt.Printf("  %-16s -> %s\n", o.Name, ps.AbstractObject(o).Format(u))
	}

	// The intended query (1) of §2: every chocolate is dark, and some
	// chocolate is filled and from Madagascar.
	intended := query.MustParse(u, "∀x1 ∃x2x3")
	fmt.Println("\nintended query:", intended)

	// The simulated user never sees Boolean tuples: each membership
	// question is synthesized into a concrete box of chocolates first.
	asked := 0
	user := oracle.Func(func(s boolean.Set) bool {
		asked++
		box, err := ps.ConcretizeQuestion(fmt.Sprintf("sample #%d", asked), s)
		if err != nil {
			panic(err)
		}
		verdict := intended.Eval(ps.AbstractObject(box))
		if asked <= 2 {
			fmt.Println()
			fmt.Print(nested.FormatObject(ps.Schema, box))
			fmt.Printf("  -> user says: %v\n", verdictWord(verdict))
		}
		return verdict
	})

	learned, stats := learn.Qhorn1(u, user)
	fmt.Printf("\nlearned after %d questions: %s\n", stats.Total(), learned)
	fmt.Println("equivalent to intent:", learned.Equivalent(intended))

	// Run the learned query over a random store; prefer real
	// chocolates from the store when showing results.
	rng := rand.New(rand.NewSource(7))
	store := nested.RandomChocolates(rng, 100, 5)
	answers, err := nested.Execute(learned, ps, store)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nthe store has 100 boxes; %d match the query:\n", len(answers))
	for i, box := range answers {
		if i == 2 {
			fmt.Printf("  … and %d more\n", len(answers)-2)
			break
		}
		fmt.Print(nested.FormatObject(ps.Schema, box))
	}
}

func verdictWord(v bool) string {
	if v {
		return "answer (I'd buy this box)"
	}
	return "non-answer (take it away)"
}
