// Fuzzing: the differential-testing engine in action. Three
// independent implementations of qhorn semantics — the polynomial
// exact learners, the Fig 6 verification sets, and brute-force
// reference semantics — are run against each other on seeded random
// queries and adversarial mutants; any disagreement would be a bug in
// at least one of them. Then a bug is injected on purpose to show the
// engine catching it and the minimizer shrinking the repro.
//
//	go run ./examples/fuzzing
package main

import (
	"fmt"
	"math/rand"

	"qhorn/internal/difffuzz"
	"qhorn/internal/query"
)

func main() {
	fmt.Println("differential fuzz: learners vs verifier vs brute force vs ground truth")
	rep := difffuzz.Run(difffuzz.Config{Seed: 7, Runs: 200})
	fmt.Println(rep.Summary())

	// Now inject a bug: the "learner" forgets its first expression.
	// Every downstream judge is cross-checked against it, so the
	// engine must notice.
	fmt.Println("\ninjecting a bug: the learner drops its first learned expression")
	warp := func(q query.Query) query.Query {
		if len(q.Exprs) == 0 {
			return q
		}
		return query.MustNew(q.U, q.Exprs[1:]...)
	}
	opt := difffuzz.Options{Warp: warp}
	rng := rand.New(rand.NewSource(7))
	for {
		c := difffuzz.GenCase(rng, difffuzz.ClassRP, 5, 8)
		res := difffuzz.CheckCase(c, opt)
		if len(res.Disagreements) == 0 {
			continue // the dropped expression happened to be redundant
		}
		fmt.Printf("caught: %s\n", res.Disagreements[0])

		small := difffuzz.Minimize(c, func(c difffuzz.Case) bool {
			return len(difffuzz.CheckCase(c, opt).Disagreements) > 0
		})
		fmt.Printf("minimized: %d vars, %d parts — %s\n",
			small.Hidden.N(), small.Hidden.Size(), small)
		fmt.Println("repro file:")
		fmt.Print(difffuzz.FormatRepro(difffuzz.CheckCase(small, opt).Disagreements[0]))
		return
	}
}
