// Quickstart: learn a quantified Boolean query from membership
// questions and verify it, all through the public qhorn API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"qhorn"
)

func main() {
	// Six propositions about the tuples nested in each data object.
	u := qhorn.MustUniverse(6)

	// The query the user has in mind but cannot write: whenever a
	// tuple satisfies x1 and x4 it must satisfy x5, and some tuple
	// satisfies x2 ∧ x3.
	intended := qhorn.MustParseQuery(u, "∀x1x4 → x5 ∃x2x3")
	fmt.Println("intended (hidden):", intended)

	// The learner only sees the user's answers to membership
	// questions. Here the user is simulated; wrap the oracle with a
	// counter and a transcript recorder to inspect the interaction.
	user := qhorn.RecordingOracle(qhorn.CountingOracle(qhorn.TargetOracle(intended)))

	// Learn through the run engine: options select the algorithm (and
	// compose with instrumentation, parallelism, budgets, … — see
	// docs/ENGINE.md). qhorn.LearnRolePreserving(u, user) is the
	// equivalent named shorthand.
	learned, stats := qhorn.Learn(u, user,
		qhorn.WithAlgorithm(qhorn.AlgorithmRolePreserving))
	fmt.Println("learned:           ", learned)
	fmt.Println("equivalent:        ", learned.Equivalent(intended))
	fmt.Printf("questions:          %d (head %d, universal %d, existential %d)\n",
		stats.Total(), stats.HeadQuestions, stats.BodyQuestions, stats.ExistentialQuestions)

	// A few lines of the interaction transcript.
	fmt.Println("\nfirst questions asked:")
	for i, e := range user.Entries {
		if i == 5 {
			fmt.Printf("  … %d more\n", len(user.Entries)-5)
			break
		}
		verdict := "non-answer"
		if e.Answer {
			verdict = "answer"
		}
		fmt.Printf("  %-28s -> %s\n", e.Question.Format(u), verdict)
	}

	// Verification (§4): O(k) questions decide whether a written
	// query matches the user's intent.
	res, err := qhorn.VerifyQ(learned, qhorn.TargetOracle(intended))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nverification: correct=%v with %d questions\n", res.Correct, res.QuestionsAsked)

	// A semantically different query is always caught (Theorem 4.2);
	// WithFirstDisagreement stops at the first conflicting answer.
	wrong := qhorn.MustParseQuery(u, "∀x1x4 → x6 ∃x2x3")
	res, err = qhorn.VerifyQ(wrong, qhorn.TargetOracle(intended),
		qhorn.WithFirstDisagreement())
	if err != nil {
		panic(err)
	}
	fmt.Printf("verifying a wrong query: correct=%v, first disagreement on %s (%s)\n",
		res.Correct, res.Disagreements[0].Question.Kind, res.Disagreements[0].Question.About)
}
