package qhorn

// The API-surface guard: the variant matrix (one exported function per
// cross-cutting feature combination) is frozen at its pre-engine
// extent. Every *Observed / *Traced / *Parallel export that existed
// when the composable run engine landed is kept as a thin documented
// wrapper, and NO new ones may appear — a new cross-cutting dimension
// is one new run.Option, not a new function per learner and verifier
// variant (docs/ENGINE.md). CI runs this test explicitly
// (go test -run TestAPISurfaceFrozen .).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// frozenVariants is the exhaustive allowlist of variant-matrix exports
// per package directory. Removing an entry here must accompany a
// deliberate, documented deprecation; adding one is a design error.
var frozenVariants = map[string][]string{
	".": {
		"LearnQhorn1Observed",
		"LearnQhorn1Parallel",
		"LearnQhorn1Traced",
		"LearnRolePreservingObserved",
		"LearnRolePreservingParallel",
		"LearnRolePreservingTraced",
		"ParallelOracleOf",
		"VerifyObserved",
		"VerifyParallel",
	},
	"internal/learn": {
		"Qhorn1Observed",
		"Qhorn1Parallel",
		"Qhorn1ParallelObserved",
		"Qhorn1Traced",
		"RolePreservingObserved",
		"RolePreservingParallel",
		"RolePreservingParallelObserved",
		"RolePreservingTraced",
	},
	"internal/verify": {
		"RunObserved",
		"RunParallel",
		"RunParallelObserved",
		"VerifyObserved",
		"VerifyParallel",
	},
}

var variantName = regexp.MustCompile(`(Observed|Traced|Parallel)`)

// variantExports parses a package directory and returns every exported
// function or method whose name matches the variant pattern, excluding
// test files.
func variantExports(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			if len(name) > 8 && name[len(name)-8:] == "_test.go" {
				continue
			}
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !fn.Name.IsExported() || !variantName.MatchString(fn.Name.Name) {
					continue
				}
				// Option constructors (WithParallel, …) are the
				// sanctioned mechanism the guard steers toward, not
				// variant-matrix growth.
				if strings.HasPrefix(fn.Name.Name, "With") {
					continue
				}
				seen[fn.Name.Name] = true
			}
		}
	}
	var out []string
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TestAPISurfaceFrozen fails when a variant-matrix export appears or
// disappears in the facade, the learners, or the verifier.
func TestAPISurfaceFrozen(t *testing.T) {
	for dir, want := range frozenVariants {
		got := variantExports(t, dir)
		allowed := map[string]bool{}
		for _, name := range want {
			allowed[name] = true
		}
		for _, name := range got {
			if !allowed[name] {
				t.Errorf("%s: new variant-matrix export %s — add a run.Option instead (docs/ENGINE.md), or freeze it here with a documented reason", dir, name)
			}
			delete(allowed, name)
		}
		for name := range allowed {
			t.Errorf("%s: frozen export %s disappeared — legacy entry points are kept as thin wrappers over the engine", dir, name)
		}
	}
}
