// Package qhorn learns and verifies quantified Boolean database
// queries from membership questions, implementing "Learning and
// Verifying Quantified Boolean Queries by Example" (Abouzied,
// Angluin, Papadimitriou, Hellerstein, Silberschatz — PODS 2013).
//
// A qhorn query is a conjunction of quantified Horn expressions over
// the tuples nested inside a data object, written in the paper's
// shorthand:
//
//	∀x1x2 → x3  ∀x4  ∃x5  ∃x1x2x5
//
// Each Boolean variable stands for one simple proposition the user
// wrote about the embedded tuples (the nested sub-package maps
// propositions and data to and from this Boolean domain). Instead of
// making the user write the quantified query, the package asks her
// membership questions — "is this object an answer?" — and
// reconstructs the query exactly:
//
//	u := qhorn.MustUniverse(6)
//	target := qhorn.MustParseQuery(u, "∀x1x4 → x5 ∃x2x3")
//	learned, stats := qhorn.LearnRolePreserving(u, qhorn.TargetOracle(target))
//	fmt.Println(learned, stats.Total()) // equivalent query, #questions
//
// Two exactly-learnable classes are provided, with the paper's
// complexity guarantees:
//
//   - LearnQhorn1: qhorn-1 (no variable repetition), O(n lg n)
//     questions (Theorem 3.1);
//   - LearnRolePreserving: role-preserving qhorn (variables repeat
//     but never switch head/body roles), O(n^(θ+1) + k·n·lg n)
//     questions (Theorems 3.5 and 3.8).
//
// Verification answers the converse problem: given a query the user
// wrote herself, BuildVerificationSet generates the O(k) membership
// questions of §4 (families A1–A4, N1–N2, Fig 6) whose
// classifications uniquely pin down the query's semantics; Verify
// runs them against the user and reports any disagreement
// (Theorem 4.2).
package qhorn

import (
	"io"
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/pac"
	"qhorn/internal/query"
	"qhorn/internal/revise"
	"qhorn/internal/run"
	"qhorn/internal/session"
	"qhorn/internal/verify"
)

// Core Boolean-domain types (see internal/boolean).
type (
	// Universe is a fixed set of n Boolean variables, one per
	// proposition.
	Universe = boolean.Universe
	// Tuple is a true/false assignment to the universe's variables.
	Tuple = boolean.Tuple
	// Set is a set of tuples: an object, and the payload of every
	// membership question.
	Set = boolean.Set
)

// Query-model types (see internal/query).
type (
	// Query is a qhorn query: a conjunction of quantified Horn
	// expressions with implicit guarantee clauses.
	Query = query.Query
	// Expr is one quantified (Horn) expression.
	Expr = query.Expr
	// Quantifier distinguishes ∀ from ∃.
	Quantifier = query.Quantifier
)

// Oracle answers membership questions; it is how the user (real or
// simulated) plugs into the learners and the verifier.
type Oracle = oracle.Oracle

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc = oracle.Func

// Learning statistics (per-phase question counts).
type (
	// Qhorn1Stats breaks down the qhorn-1 learner's questions.
	Qhorn1Stats = learn.Qhorn1Stats
	// RPStats breaks down the role-preserving learner's questions.
	RPStats = learn.RPStats
)

// Verification types (see internal/verify).
type (
	// VerificationSet is the O(k) question set of §4.
	VerificationSet = verify.Set
	// VerificationQuestion is one question with its expected
	// classification.
	VerificationQuestion = verify.Question
	// VerificationResult reports agreement and disagreements.
	VerificationResult = verify.Result
)

// Quantifiers and the headless-expression marker.
const (
	Forall = query.Forall
	Exists = query.Exists
	NoHead = query.NoHead
)

// NewUniverse returns a universe of n Boolean variables (n ≤ 64).
func NewUniverse(n int) (Universe, error) { return boolean.NewUniverse(n) }

// MustUniverse is NewUniverse for statically known sizes.
func MustUniverse(n int) Universe { return boolean.MustUniverse(n) }

// ParseQuery reads a query in the paper's shorthand notation
// ("∀x1x2 → x3 ∃x4"; ASCII "Ax1x2 -> x3 Ex4" also accepted).
func ParseQuery(u Universe, s string) (Query, error) { return query.Parse(u, s) }

// MustParseQuery is ParseQuery for fixtures and examples.
func MustParseQuery(u Universe, s string) Query { return query.MustParse(u, s) }

// NewQuery builds a validated query from expressions; use the
// constructors UniversalHorn, BodylessUniversal, ExistentialHorn and
// Conjunction.
func NewQuery(u Universe, exprs ...Expr) (Query, error) { return query.New(u, exprs...) }

// UniversalHorn returns ∀ body → head.
func UniversalHorn(body Tuple, head int) Expr { return query.UniversalHorn(body, head) }

// BodylessUniversal returns ∀ head.
func BodylessUniversal(head int) Expr { return query.BodylessUniversal(head) }

// ExistentialHorn returns ∃ body → head.
func ExistentialHorn(body Tuple, head int) Expr { return query.ExistentialHorn(body, head) }

// Conjunction returns the existential conjunction ∃ vars.
func Conjunction(vars Tuple) Expr { return query.Conjunction(vars) }

// Vars builds a tuple from 0-based variable indices.
func Vars(vars ...int) Tuple { return boolean.FromVars(vars...) }

// ParseSet reads an object in the braces notation, e.g. "{110, 011}".
func ParseSet(u Universe, s string) (Set, error) { return boolean.ParseSet(u, s) }

// MustParseSet is ParseSet for fixtures and examples.
func MustParseSet(u Universe, s string) Set { return boolean.MustParseSet(u, s) }

// LearnQhorn1 learns a qhorn-1 query exactly with O(n lg n)
// membership questions (§3.1, Theorem 3.1).
func LearnQhorn1(u Universe, o Oracle) (Query, Qhorn1Stats) { return learn.Qhorn1(u, o) }

// LearnRolePreserving learns a role-preserving qhorn query exactly
// with O(n^(θ+1) + k·n·lg n) membership questions (§3.2).
func LearnRolePreserving(u Universe, o Oracle) (Query, RPStats) { return learn.RolePreserving(u, o) }

// BuildVerificationSet constructs the O(k) verification questions of
// §4 for a role-preserving query.
func BuildVerificationSet(q Query) (VerificationSet, error) { return verify.Build(q) }

// Verify asks the user every verification question of q and reports
// whether she agrees with q's classifications (Theorem 4.2: any
// semantic difference from her intended query surfaces here).
func Verify(q Query, o Oracle) (VerificationResult, error) { return verify.Verify(q, o) }

// TargetOracle simulates a user whose intended query is q. Answers
// come from the compiled evaluation kernel (see Compile); use
// TargetOracleInterpreted to force the interpreted evaluator.
func TargetOracle(q Query) Oracle { return oracle.Target(q) }

// TargetOracleInterpreted is TargetOracle evaluating through the
// interpreted Query.Eval — the reference path for differential
// testing and kernel diagnosis.
func TargetOracleInterpreted(q Query) Oracle { return oracle.TargetInterpreted(q) }

// CompiledQuery is the compiled evaluation form of a Query
// (docs/PERFORMANCE.md): expressions flattened into machine-word
// masks so Eval is a single allocation-free pass over the object, with
// the normal form computed once and cached for Equivalent/Implies.
type CompiledQuery = query.Compiled

// Compile flattens q into its compiled evaluation form. Compile once,
// evaluate many times: the kernel is immutable and safe for concurrent
// use.
func Compile(q Query) *CompiledQuery { return query.Compile(q) }

// NoisyOracle flips each of o's responses with probability p.
func NoisyOracle(o Oracle, p float64, rng *rand.Rand) Oracle { return oracle.Noisy(o, p, rng) }

// CountingOracle wraps o and counts questions and tuples.
func CountingOracle(o Oracle) *oracle.Counter { return oracle.Count(o) }

// RecordingOracle wraps o and records the full interaction
// transcript.
func RecordingOracle(o Oracle) *oracle.Transcript { return oracle.Record(o) }

// GenQhorn1 generates a random qhorn-1 query on n variables.
func GenQhorn1(rng *rand.Rand, n int) Query { return query.GenQhorn1(rng, n) }

// GenRolePreserving generates a random role-preserving query.
func GenRolePreserving(rng *rand.Rand, n int, o query.RPOptions) Query {
	return query.GenRolePreserving(rng, n, o)
}

// RPOptions bounds the shape of GenRolePreserving queries.
type RPOptions = query.RPOptions

// Revision (§6 future work): correct a nearly-right query with few
// questions.
type (
	// RevisionResult reports a Revise run.
	RevisionResult = revise.Result
)

// Revise corrects the given role-preserving query to match the user's
// intent: O(k) questions when it is already right, localized repairs
// for small edits, never worse than learning from scratch.
func Revise(given Query, o Oracle) (RevisionResult, error) { return revise.Revise(given, o) }

// QueryDistance is the paper's closeness measure between two
// role-preserving queries: the symmetric difference of their
// distinguishing-tuple sets (§6).
func QueryDistance(a, b Query) int { return revise.Distance(a, b) }

// Session is an oracle with a reviewable, amendable interaction
// history (§5): flip a mistaken response with Amend and re-run the
// learner; answered questions replay for free.
type Session = session.Session

// NewSession wraps the user's oracle with an interaction history.
func NewSession(user Oracle) *Session { return session.New(user) }

// PAC learning (§6 future work): learn approximately from random
// labeled examples instead of chosen membership questions.
type (
	// PACParams bounds the PAC hypothesis search.
	PACParams = pac.Params
	// PACStats reports a PAC learning run.
	PACStats = pac.Stats
	// Sampler draws objects from an example distribution.
	Sampler = pac.Sampler
	// PACExample is one labeled object.
	PACExample = pac.Example
)

// LearnPAC draws m labeled examples and returns the most-specific
// consistent hypothesis.
func LearnPAC(u Universe, o Oracle, s Sampler, m int, p PACParams) (Query, PACStats) {
	return pac.Learn(u, o, s, m, p)
}

// PACError estimates the hypothesis-target disagreement rate over m
// fresh draws.
func PACError(hypothesis, target Query, s Sampler, m int) float64 {
	return pac.Error(hypothesis, target, s, m)
}

// NewBoundarySampler draws objects near the reference query's
// decision boundary, so both labels occur with substantial
// probability.
func NewBoundarySampler(ref Query, rng *rand.Rand, mutations int) *pac.BoundarySampler {
	return pac.NewBoundarySampler(ref, rng, mutations)
}

// Tracing: observe every membership question with its phase and
// purpose, for interfaces that explain themselves to the user.
type (
	// TraceStep is one annotated question.
	TraceStep = learn.Step
	// Tracer observes learner questions; nil is silent.
	Tracer = learn.Tracer
)

// LearnQhorn1Traced is LearnQhorn1 with per-question annotations.
func LearnQhorn1Traced(u Universe, o Oracle, t Tracer) (Query, Qhorn1Stats) {
	return learn.Qhorn1Traced(u, o, t)
}

// LearnRolePreservingTraced is LearnRolePreserving with per-question
// annotations.
func LearnRolePreservingTraced(u Universe, o Oracle, t Tracer) (Query, RPStats) {
	return learn.RolePreservingTraced(u, o, t)
}

// Observability (see docs/OBSERVABILITY.md): hierarchical span
// tracing, a metrics registry with Prometheus text exposition, and
// per-question step tracing, shared by the learners, the verifier and
// the CLIs. Nil hooks are silent, so instrumentation can be threaded
// unconditionally.
type (
	// MetricsRegistry collects counters, gauges and histograms; a nil
	// registry discards everything.
	MetricsRegistry = obs.Registry
	// SpanTracer emits hierarchical spans to its sinks; nil is silent.
	SpanTracer = obs.Tracer
	// Span is one timed region of a run ("learn/rp", "heads", …).
	Span = obs.Span
	// SpanEvent is one point-in-time event within a span.
	SpanEvent = obs.Event
	// SpanSink consumes the span stream (TreeSink, JSONLSink, or a
	// custom consumer such as qhornlearn's -explain printer).
	SpanSink = obs.SpanSink
	// TreeSink collects spans and renders them as an indented tree.
	TreeSink = obs.TreeSink
	// JSONLSink streams spans as JSON lines.
	JSONLSink = obs.JSONLSink
	// FlightRecorder is the bounded always-on span sink behind the
	// observability server's /spans endpoint: every open span plus a
	// ring of the last N completed spans.
	FlightRecorder = obs.FlightRecorder
	// ObsServer serves the live observability plane over HTTP:
	// /metrics, /spans, /progress, /healthz and /debug/pprof.
	ObsServer = obs.Server
	// Instrumentation bundles the optional observability hooks of a
	// learning run; the zero value is silent.
	Instrumentation = learn.Instrumentation
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewSpanTracer returns a tracer emitting to the given sinks.
func NewSpanTracer(sinks ...SpanSink) *SpanTracer { return obs.NewTracer(sinks...) }

// NewTreeSink returns a sink that renders the span tree.
func NewTreeSink() *TreeSink { return obs.NewTreeSink() }

// NewJSONLSink returns a sink streaming spans as JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewFlightRecorder returns a flight recorder keeping the last n
// completed spans; n <= 0 selects the default capacity.
func NewFlightRecorder(n int) *FlightRecorder { return obs.NewFlightRecorder(n) }

// NewObsServer returns a live observability server over the given
// registry, tracer and flight recorder; any nil piece is created
// fresh. Instrument runs with the server's registry and tracer (or
// the WithObsServer engine option) and Start it to watch them live.
func NewObsServer(reg *MetricsRegistry, tracer *SpanTracer, flight *FlightRecorder) *ObsServer {
	return obs.NewServer(reg, tracer, flight)
}

// LearnQhorn1Observed is LearnQhorn1 with observability hooks.
func LearnQhorn1Observed(u Universe, o Oracle, ins Instrumentation) (Query, Qhorn1Stats) {
	return learn.Qhorn1Observed(u, o, ins)
}

// LearnRolePreservingObserved is LearnRolePreserving with
// observability hooks.
func LearnRolePreservingObserved(u Universe, o Oracle, ins Instrumentation) (Query, RPStats) {
	return learn.RolePreservingObserved(u, o, ins)
}

// VerifyObserved is Verify with observability hooks — the same
// Instrumentation struct the learners take, so one instrumentation
// value threads through learning and verification. Any subset of the
// hooks may be unset.
func VerifyObserved(q Query, o Oracle, ins Instrumentation) (VerificationResult, error) {
	return verify.VerifyObserved(q, o, ins)
}

// CountingOracleInto is CountingOracle additionally mirroring its
// counts into a metrics registry (qhorn_questions_total and friends).
func CountingOracleInto(o Oracle, reg *MetricsRegistry) *oracle.Counter {
	return oracle.CountInto(o, reg)
}

// Parallel batched question engine (see docs/PARALLELISM.md): the
// learners and the verifier surface their independent question sets as
// batches, and a BatchOracle answers each batch concurrently — exactly
// the serial questions, exactly the serial counts, less wall time when
// every answer costs user latency.
type (
	// BatchOracle is an Oracle that can answer a slice of independent
	// questions at once.
	BatchOracle = oracle.BatchOracle
	// ParallelOracle is the worker-pool driver turning any
	// concurrency-safe Oracle into a BatchOracle.
	ParallelOracle = oracle.Pool
)

// ParallelOracleOf wraps a concurrency-safe oracle with a worker pool
// of the given size (≤ 0 selects one worker per CPU).
func ParallelOracleOf(o Oracle, workers int) *ParallelOracle { return oracle.Parallel(o, workers) }

// AskAll answers every question through o — as one concurrent batch
// when o is a BatchOracle, serially otherwise.
func AskAll(o Oracle, qs []Set) []bool { return oracle.AskAll(o, qs) }

// LearnQhorn1Parallel is LearnQhorn1 with independent question sets
// issued as batches: equivalent output, identical question counts.
func LearnQhorn1Parallel(u Universe, o Oracle) (Query, Qhorn1Stats) {
	return learn.Qhorn1Parallel(u, o)
}

// LearnRolePreservingParallel is LearnRolePreserving with batched
// question sets and concurrent per-head searches: equivalent output,
// identical question counts.
func LearnRolePreservingParallel(u Universe, o Oracle) (Query, RPStats) {
	return learn.RolePreservingParallel(u, o)
}

// VerifyParallel is Verify with the whole verification set answered as
// one batch (the A1–A4/N1–N2 questions are mutually independent).
func VerifyParallel(q Query, o Oracle) (VerificationResult, error) {
	return verify.VerifyParallel(q, o)
}

// EstimateQhorn1 bounds the number of questions a qhorn-1 learning
// session may take on n propositions (Theorem 3.1 with measured
// constants) — the number an interface shows before starting.
func EstimateQhorn1(n int) int { return learn.EstimateQhorn1(n) }

// EstimateRolePreserving bounds the questions for a role-preserving
// session with the given shape (heads, causal density θ, expression
// count k).
func EstimateRolePreserving(n, heads, theta, k int) int {
	return learn.EstimateRolePreserving(n, heads, theta, k)
}

// VerificationReport is the serializable rendering of a verification
// set for query interfaces (kind, expectation, label, tuples per
// question).
type VerificationReport = verify.Report

// Classify reports which learnable subclasses q belongs to, with a
// diagnostic per violated restriction (§6's class-verification
// direction); it is also available as the Query method q.Classify().
func Classify(q Query) query.ClassReport { return q.Classify() }

// ClassReport is the result of Classify.
type ClassReport = query.ClassReport

// The composable run engine (docs/ENGINE.md): Learn and VerifyQ are
// the option-driven entry points every named variant above delegates
// to. One call site composes the algorithm, the observability hooks,
// the batching strategy and the oracle wrapper stack instead of
// picking from a matrix of exported variants:
//
//	q, stats := qhorn.Learn(u, user,
//	    qhorn.WithAlgorithm(qhorn.AlgorithmRolePreserving),
//	    qhorn.WithParallel(8),
//	    qhorn.WithInstrumentation(ins))
type (
	// RunOption configures one dimension of a learning or
	// verification run.
	RunOption = run.Option
	// RunStats is the engine's unified per-phase question counts; the
	// qhorn-1 body phase and the role-preserving universal phase both
	// land in BodyQuestions.
	RunStats = run.Stats
	// Algorithm selects the learning algorithm of a run.
	Algorithm = run.Algorithm
	// Ablations disables individual role-preserving optimizations.
	Ablations = learn.Ablations
)

// The two exactly-learnable classes, as engine algorithms.
const (
	// AlgorithmQhorn1 learns qhorn-1 queries (§3.1).
	AlgorithmQhorn1 = run.Qhorn1
	// AlgorithmRolePreserving learns role-preserving qhorn queries
	// (§3.2).
	AlgorithmRolePreserving = run.RolePreserving
)

// ParseAlgorithm reads the CLI spelling of an algorithm ("qhorn1" or
// "rp").
func ParseAlgorithm(s string) (Algorithm, error) { return run.ParseAlgorithm(s) }

// Learn learns a query exactly under the given engine options
// (default: qhorn-1, serial, silent). Every LearnXxx variant above is
// a fixed option set over this call.
func Learn(u Universe, o Oracle, opts ...RunOption) (Query, RunStats) {
	return learn.Run(u, o, opts...)
}

// VerifyQ verifies q against the user under the given engine options
// (default: serial, silent, full set). Verify, VerifyObserved and
// VerifyParallel are fixed option sets over this call.
func VerifyQ(q Query, o Oracle, opts ...RunOption) (VerificationResult, error) {
	return verify.Run(q, o, opts...)
}

// WithAlgorithm selects the learning algorithm.
func WithAlgorithm(a Algorithm) RunOption { return run.WithAlgorithm(a) }

// WithNaiveSearch selects the qhorn-1 one-question-per-variable
// baseline of §3.1.2.
func WithNaiveSearch() RunOption { return run.WithNaiveSearch() }

// WithAblations disables selected role-preserving optimizations.
func WithAblations(ab Ablations) RunOption { return run.WithAblations(ab) }

// WithSteps adds a per-question step tracer to the run.
func WithSteps(t Tracer) RunOption { return run.WithSteps(t) }

// WithInstrumentation overlays the non-nil hooks of ins onto the
// run's instrumentation.
func WithInstrumentation(ins Instrumentation) RunOption { return run.WithInstrumentation(ins) }

// WithObsServer instruments the run with a live observability
// server's registry and span tracer, so its metrics, spans and
// progress are visible at the server's endpoints while the run is in
// flight. A nil server is a no-op.
func WithObsServer(s *ObsServer) RunOption { return run.WithObsServer(s) }

// WithParallel answers independent question batches with n concurrent
// workers (the engine assembles the worker pool).
func WithParallel(n int) RunOption { return run.WithParallel(n) }

// WithBatch selects the batch question structure without wrapping a
// pool — bring your own BatchOracle, or accept serial degradation.
func WithBatch() RunOption { return run.WithBatch() }

// WithBudget caps the questions reaching the user at limit.
func WithBudget(limit int) RunOption { return run.WithBudget(limit) }

// WithMemo deduplicates repeated questions before they reach the
// user.
func WithMemo() RunOption { return run.WithMemo() }

// WithNoise flips each of the user's answers with probability p.
func WithNoise(p float64, rng *rand.Rand) RunOption { return run.WithNoise(p, rng) }

// WithFirstDisagreement stops a verification run at the first
// disagreement.
func WithFirstDisagreement() RunOption { return run.WithFirstDisagreement() }

// WithCompiledEval makes the run's simulated users evaluate through
// the compiled kernel (the default; see Compile).
func WithCompiledEval() RunOption { return run.WithCompiledEval() }

// WithInterpretedEval forces the run's simulated users onto the
// interpreted evaluator — the kernel's escape hatch.
func WithInterpretedEval() RunOption { return run.WithInterpretedEval() }
