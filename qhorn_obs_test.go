package qhorn_test

import (
	"strings"
	"testing"

	"qhorn"
)

// TestObservedLearnersThroughFacade: the re-exported Observed learner
// variants produce the same queries as the plain ones while filling
// the span tree and the metrics registry.
func TestObservedLearnersThroughFacade(t *testing.T) {
	u := qhorn.MustUniverse(6)
	target := qhorn.MustParseQuery(u, "∀x1x4 → x5 ∃x2x3")

	tree := qhorn.NewTreeSink()
	ins := qhorn.Instrumentation{
		Spans:   qhorn.NewSpanTracer(tree),
		Metrics: qhorn.NewMetricsRegistry(),
	}
	learned, stats := qhorn.LearnRolePreservingObserved(u, qhorn.TargetOracle(target), ins)
	if !learned.Equivalent(target) {
		t.Fatalf("observed learner diverged: %s", learned)
	}
	if stats.Total() == 0 {
		t.Fatal("no questions counted")
	}
	if got := ins.Metrics.SumCounter("qhorn_questions_by_phase_total"); got != int64(stats.Total()) {
		t.Errorf("metrics counted %d questions, stats %d", got, stats.Total())
	}
	if spanNames := tree.SpanNames(); len(spanNames) == 0 {
		t.Error("no spans recorded by the observed learner")
	}

	q1target := qhorn.MustParseQuery(qhorn.MustUniverse(4), "∀x1x2 → x3 ∃x4")
	q1, q1stats := qhorn.LearnQhorn1Observed(q1target.U, qhorn.TargetOracle(q1target), qhorn.Instrumentation{
		Spans: qhorn.NewSpanTracer(qhorn.NewTreeSink()),
	})
	if !q1.Equivalent(q1target) || q1stats.Total() == 0 {
		t.Fatalf("observed qhorn-1 learner diverged: %s (%d questions)", q1, q1stats.Total())
	}
}

// TestVerifyObservedThroughFacade: the re-exported observed verifier
// agrees with Verify and tolerates nil hooks.
func TestVerifyObservedThroughFacade(t *testing.T) {
	u := qhorn.MustUniverse(5)
	q := qhorn.MustParseQuery(u, "∀x1 → x2 ∃x3x4 ∃x5")
	reg := qhorn.NewMetricsRegistry()
	res, err := qhorn.VerifyObserved(q, qhorn.TargetOracle(q), qhorn.Instrumentation{
		Spans:   qhorn.NewSpanTracer(qhorn.NewTreeSink()),
		Metrics: reg,
	})
	if err != nil || !res.Correct {
		t.Fatalf("self-verify: correct=%v err=%v", res.Correct, err)
	}
	if got := reg.SumCounter("qhorn_verify_questions_total"); got != int64(res.QuestionsAsked) {
		t.Errorf("metrics counted %d verify questions, result says %d", got, res.QuestionsAsked)
	}
	if res, err := qhorn.VerifyObserved(q, qhorn.TargetOracle(q), qhorn.Instrumentation{}); err != nil || !res.Correct {
		t.Errorf("nil hooks: correct=%v err=%v", res.Correct, err)
	}
	wrong := qhorn.MustParseQuery(u, "∀x1 → x3 ∃x5")
	if res, err := qhorn.VerifyObserved(wrong, qhorn.TargetOracle(q), qhorn.Instrumentation{Metrics: reg}); err != nil || res.Correct {
		t.Errorf("wrong query verified: correct=%v err=%v", res.Correct, err)
	}
}

// TestSinkConstructorsThroughFacade: TreeSink renders the span
// hierarchy, JSONLSink streams it as JSON lines.
func TestSinkConstructorsThroughFacade(t *testing.T) {
	tree := qhorn.NewTreeSink()
	var jsonl strings.Builder
	tracer := qhorn.NewSpanTracer(tree, qhorn.NewJSONLSink(&jsonl))
	span := tracer.StartSpan("root")
	span.Event("hello")
	span.End()

	var rendered strings.Builder
	tree.Render(&rendered)
	if !strings.Contains(rendered.String(), "root") {
		t.Errorf("tree rendering missing span:\n%s", rendered.String())
	}
	if !strings.Contains(jsonl.String(), `"root"`) || !strings.Contains(jsonl.String(), `"hello"`) {
		t.Errorf("jsonl stream missing span or event:\n%s", jsonl.String())
	}
}

// TestCountingOracleIntoThroughFacade: counts mirror into the metrics
// registry at the oracle boundary.
func TestCountingOracleIntoThroughFacade(t *testing.T) {
	u := qhorn.MustUniverse(4)
	target := qhorn.MustParseQuery(u, "∀x1x2 → x3 ∃x4")
	reg := qhorn.NewMetricsRegistry()
	counted := qhorn.CountingOracleInto(qhorn.TargetOracle(target), reg)
	learned, stats := qhorn.LearnQhorn1(u, counted)
	if !learned.Equivalent(target) {
		t.Fatalf("learner diverged: %s", learned)
	}
	questions, tuples, _ := counted.Snapshot()
	if questions != stats.Total() {
		t.Errorf("counter saw %d questions, stats %d", questions, stats.Total())
	}
	if got := reg.SumCounter("qhorn_questions_total"); got != int64(questions) {
		t.Errorf("registry counted %d questions, counter %d", got, questions)
	}
	if tuples == 0 {
		t.Error("no tuples counted")
	}
}

// TestNewUniverseAndParseQueryErrors: the error-returning facade
// constructors reject bad input and accept good input.
func TestNewUniverseAndParseQueryErrors(t *testing.T) {
	if _, err := qhorn.NewUniverse(65); err == nil {
		t.Error("NewUniverse(65) succeeded, want error (max 64)")
	}
	u, err := qhorn.NewUniverse(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qhorn.ParseQuery(u, "∃x9"); err == nil {
		t.Error("ParseQuery out-of-universe variable succeeded")
	}
	q, err := qhorn.ParseQuery(u, "∀x1 → x2 ∃x3")
	if err != nil || q.Size() != 2 {
		t.Errorf("ParseQuery = %v, %v", q, err)
	}
}
